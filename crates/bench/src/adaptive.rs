//! The adaptive-prediction sweep: SCOUT vs Markov vs Hybrid across
//! datasets and history-sensitive workloads.
//!
//! Four workloads per dataset, built from `scout_sim::workloads`:
//!
//! * `follow` — a plain guided walk (the paper's regime): structure
//!   following should win, history has nothing to replay. The hybrid must
//!   stay within noise of plain SCOUT here.
//! * `revisit_loop` — one tour walked over and over: every lap boundary is
//!   a teleport no structural prediction can see. The CI guard lives on
//!   this workload: the hybrid's pages-hit must be ≥ plain SCOUT's on
//!   every dataset (`revisit_regressions` must stay 0).
//! * `teleport` — the user bounces between a few hotspots.
//! * `branchy` — repeated returns to one branch point, arms walked in a
//!   periodic order the structure cannot predict but history can.
//!
//! All measurements are simulated quantities (cache hits, simulated
//! response time), so the recorded numbers are host-independent and the
//! guard is deterministic. The `adaptive` **bin** writes
//! `BENCH_adaptive.json` (uploaded by CI, guard-checked); the
//! `fig_adaptive` **bench target** runs a reduced scale as the compile +
//! smoke check.

use scout_index::SpatialIndex;
use scout_sim::workloads::{branchy_exploration, revisit_loop, teleport_hotspots};
use scout_sim::{run_sequence, ExecutorConfig, TestBed};
use scout_synth::{
    generate_lung, generate_neurons, generate_roads, generate_sequences, Dataset, LungParams,
    NeuronParams, RoadParams, SequenceParams,
};

/// One prefetcher's numbers on one workload.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Prefetcher display name.
    pub name: String,
    /// Result pages requested across the stream.
    pub pages_total: u64,
    /// Result pages served from the prefetch cache.
    pub pages_hit: u64,
    /// Total simulated response time, µs.
    pub response_us: f64,
    /// Pages prefetched from disk.
    pub prefetch_pages: u64,
}

impl MethodRow {
    /// Cache-hit rate over result pages.
    pub fn hit_rate(&self) -> f64 {
        scout_storage::hit_ratio(self.pages_hit, self.pages_total)
    }
}

/// One workload's comparison on one dataset.
#[derive(Debug, Clone)]
pub struct WorkloadRows {
    /// Workload name (JSON key).
    pub workload: &'static str,
    /// Queries in the stream.
    pub queries: usize,
    /// One row per prefetcher, roster order.
    pub methods: Vec<MethodRow>,
}

impl WorkloadRows {
    /// The row of one method by (exact) display name.
    pub fn method(&self, name: &str) -> Option<&MethodRow> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// All workloads of one dataset.
#[derive(Debug, Clone)]
pub struct DatasetAdaptive {
    /// Dataset name (JSON key).
    pub name: &'static str,
    /// Dataset object count.
    pub objects: usize,
    /// Pages in the R-tree layout.
    pub pages: usize,
    /// One entry per workload.
    pub workloads: Vec<WorkloadRows>,
}

/// A full adaptive-prediction sweep.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Scale factor the sweep ran at.
    pub scale: f64,
    /// Prefetch-window ratio used.
    pub window_ratio: f64,
    /// Prefetch-cache capacity in pages.
    pub cache_pages: usize,
    /// Fault-injection plan of the sweep (always disabled here; recorded
    /// so every bench artifact states its fault knobs, ISSUE 8).
    pub faults: scout_storage::FaultPlan,
    /// One entry per dataset.
    pub datasets: Vec<DatasetAdaptive>,
}

/// Display name of the plain SCOUT row.
pub const SCOUT_NAME: &str = "SCOUT";
/// Display name of the hybrid row.
pub const HYBRID_NAME: &str = "Hybrid (SCOUT+Markov)";
/// JSON key of the guarded workload.
pub const REVISIT_WORKLOAD: &str = "revisit_loop";

impl AdaptiveReport {
    /// Number of datasets where the hybrid's pages-hit fell below plain
    /// SCOUT's on the revisit-loop workload — the CI guard value, which
    /// must stay 0.
    pub fn revisit_regressions(&self) -> u64 {
        self.datasets
            .iter()
            .filter(|d| {
                let Some(w) = d.workloads.iter().find(|w| w.workload == REVISIT_WORKLOAD) else {
                    return true; // a missing workload is a regression too
                };
                match (w.method(HYBRID_NAME), w.method(SCOUT_NAME)) {
                    (Some(h), Some(s)) => h.pages_hit < s.pages_hit,
                    _ => true,
                }
            })
            .count() as u64
    }

    /// Serializes the report as pretty-printed JSON (no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&crate::meta_json("adaptive"));
        // schedule/workers/max_parallelism make cross-run comparisons
        // interpretable: every bench JSON records how it was scheduled,
        // even single-threaded sweeps like this one.
        out.push_str(&format!(
            "  \"config\": {{ \"scale\": {:.2}, \"window_ratio\": {:.2}, \"cache_pages\": {}, \
             \"schedule\": \"sequential\", \"workers\": 1, \"max_parallelism\": {}, {}, {} }},\n",
            self.scale,
            self.window_ratio,
            self.cache_pages,
            scout_sim::default_parallelism(),
            crate::faults_json(&self.faults),
            crate::batch_json(&scout_storage::BatchPlan::default()),
        ));
        out.push_str("  \"datasets\": {\n");
        for (i, d) in self.datasets.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\n      \"objects\": {}, \"pages\": {},\n      \"workloads\": {{\n",
                d.name, d.objects, d.pages
            ));
            for (j, w) in d.workloads.iter().enumerate() {
                out.push_str(&format!(
                    "        \"{}\": {{ \"queries\": {}, \"methods\": {{\n",
                    w.workload, w.queries
                ));
                for (k, m) in w.methods.iter().enumerate() {
                    let comma = if k + 1 < w.methods.len() { "," } else { "" };
                    out.push_str(&format!(
                        "          \"{}\": {{ \"pages_total\": {}, \"pages_hit\": {}, \
                         \"hit_rate\": {:.4}, \"response_ms\": {:.3}, \
                         \"prefetch_pages\": {} }}{}\n",
                        m.name,
                        m.pages_total,
                        m.pages_hit,
                        m.hit_rate(),
                        m.response_us / 1_000.0,
                        m.prefetch_pages,
                        comma
                    ));
                }
                let comma = if j + 1 < d.workloads.len() { "," } else { "" };
                out.push_str(&format!("        }} }}{comma}\n"));
            }
            let comma = if i + 1 < self.datasets.len() { "," } else { "" };
            out.push_str(&format!("      }}\n    }}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"guard\": {{ \"revisit_regressions\": {} }}\n",
            self.revisit_regressions()
        ));
        out.push_str("}\n");
        out
    }
}

/// Query volume containing ≈ `objects_per_query` objects on this dataset
/// (the fig17 sizing rule — densities differ per generator).
fn query_volume(dataset: &Dataset, objects_per_query: f64) -> f64 {
    objects_per_query / dataset.density()
}

fn run_workload(
    bed: &TestBed,
    workload: &'static str,
    regions: &[scout_geometry::QueryRegion],
    exec: &ExecutorConfig,
) -> WorkloadRows {
    let ctx = bed.ctx_rtree();
    // Fresh roster instances per workload (run_sequence resets them
    // anyway; fresh boxes keep the roster order explicit).
    let methods = crate::adaptive_roster()
        .into_iter()
        .map(|mut p| {
            let trace = run_sequence(&ctx, p.as_mut(), regions, exec);
            MethodRow {
                name: p.name(),
                pages_total: trace.io.result_pages_total(),
                pages_hit: trace.io.result_pages_cache,
                response_us: trace.total_response_us(),
                prefetch_pages: trace.io.prefetch_pages_disk,
            }
        })
        .collect();
    WorkloadRows { workload, queries: regions.len(), methods }
}

fn dataset_report(
    name: &'static str,
    dataset: Dataset,
    scale: f64,
    exec: &ExecutorConfig,
    seed: u64,
) -> DatasetAdaptive {
    let bed = TestBed::with_page_capacity(dataset, 32);
    let volume = query_volume(&bed.dataset, 250.0);
    let params = SequenceParams { volume, ..SequenceParams::sensitivity_default() };
    let n = |x: f64| ((x * scale.max(0.2)).round() as usize).max(2);

    let follow_len = n(24.0);
    let follow = generate_sequences(
        &bed.dataset,
        &SequenceParams { length: follow_len, ..params },
        1,
        seed ^ 0xF0,
    )
    .remove(0)
    .regions;
    let revisit = revisit_loop(&bed.dataset, &params, n(8.0), 4, seed ^ 0xAA);
    let teleport = teleport_hotspots(&bed.dataset, &params, 3, n(4.0), n(8.0), seed ^ 0x7E);
    let branchy = branchy_exploration(&bed.dataset, &params, 2, n(4.0), 3, seed ^ 0xB2);

    let workloads = vec![
        run_workload(&bed, "follow", &follow, exec),
        run_workload(&bed, REVISIT_WORKLOAD, &revisit, exec),
        run_workload(&bed, "teleport", &teleport, exec),
        run_workload(&bed, "branchy", &branchy, exec),
    ];
    DatasetAdaptive {
        name,
        objects: bed.dataset.objects.len(),
        pages: bed.rtree.layout().page_count(),
        workloads,
    }
}

/// Runs the full sweep at `scale` (1.0 = the CI artifact size; the bench
/// smoke target uses a fraction). Deterministic in `seed`.
pub fn run(scale: f64, seed: u64) -> AdaptiveReport {
    let exec = ExecutorConfig {
        window_ratio: 1.6,
        // Modest capacity on purpose: a cache that holds every lap of a
        // revisit loop would make later laps free for any prefetcher;
        // pressure is what makes per-lap prediction quality visible.
        cache_pages: 192,
        ..ExecutorConfig::default()
    };
    let neuron_objects = ((25_000.0 * scale) as usize).max(2_000);
    let neuron = generate_neurons(&NeuronParams::with_target_objects(neuron_objects), seed);
    let lung_params = if scale < 0.5 {
        LungParams { generations: 6, ..Default::default() }
    } else {
        LungParams::default()
    };
    let lung = generate_lung(&lung_params, seed ^ 0x11);
    let road_params = if scale < 0.5 {
        RoadParams { grid_n: 24, ..Default::default() }
    } else {
        RoadParams::default()
    };
    let roads = generate_roads(&road_params, seed ^ 0x30);

    AdaptiveReport {
        scale,
        window_ratio: exec.window_ratio,
        cache_pages: exec.cache_pages,
        faults: exec.faults,
        datasets: vec![
            dataset_report("neuron", neuron, scale, &exec, seed),
            dataset_report("lung", lung, scale, &exec, seed),
            dataset_report("roads", roads, scale, &exec, seed),
        ],
    }
}
