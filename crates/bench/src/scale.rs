//! The `fig_scale` sweep: M:N scheduler throughput at 1k/10k/100k
//! concurrent sessions.
//!
//! SCOUT's setting is many analysts on one shared store; the paper's
//! evaluation stops at tens of clients because thread-per-session does.
//! This sweep drives the ISSUE 7 work-stealing scheduler across session
//! counts × worker counts and records throughput (prefetch windows per
//! second — one window per query), residual latency percentiles, and the
//! scheduler's steal/park/shed counters, plus a thread-per-session
//! baseline at the smallest count (spawning 100k OS threads is the
//! pathology the scheduler exists to avoid, so the baseline stays small).
//!
//! Two guard values, checked by CI against `BENCH_scale.json`:
//!
//! * `mn_vs_rr_pages_hit_mismatches` — at the smallest count, under the
//!   eviction-free config of DESIGN.md §5, every measured width must
//!   produce exactly round-robin's pages-hit totals (0 = all match).
//! * `mn_w1_regressions` — width-1 M:N runs the same in-order loop as
//!   round-robin, so its wall clock must stay within noise (2×) of RR
//!   (0 = within bound).
//!
//! The throughput sweep itself runs under cache *pressure* (a small
//! shared cache, multiple tenants) — realistic contention, not the
//! determinism regime.

use crate::{scale, seed};
use scout_baselines::StraightLine;
use scout_geometry::QueryRegion;
use scout_index::SpatialIndex;
use scout_sim::{
    default_parallelism, AdmissionControl, ExecutorConfig, MultiSessionConfig,
    MultiSessionExecutor, MultiSessionReport, Schedule, Session, TestBed,
};
use scout_synth::{generate_sequences, SequenceParams};
use std::time::Instant;

/// Distinct query streams shared across the fleet (sessions cycle over
/// them, so 100k sessions need 64 stream generations, not 100k).
const STREAM_POOL: usize = 64;
/// Tenants the fleet is spread over.
const TENANTS: usize = 4;

/// One (session count × worker count) measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Requested crew width.
    pub workers: usize,
    /// Wall-clock time of the fleet run, ms.
    pub wall_ms: f64,
    /// Prefetch windows (= queries) completed per wall-clock second.
    pub windows_per_sec: f64,
    /// Residual latency percentiles across all queries, µs (simulated).
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// Result pages requested across the fleet.
    pub pages_total: u64,
    /// Result pages served from the shared cache.
    pub pages_hit: u64,
    /// Shared-cache evictions (pressure indicator).
    pub evictions: u64,
    /// Sessions taken from another worker's queue.
    pub steals: u64,
    /// Sessions parked at phase boundaries.
    pub parks: u64,
    /// Sessions shed by admission control.
    pub shed: u64,
    /// Bulk-synchronous rounds executed.
    pub rounds: u64,
}

/// The thread-per-session reference at the smallest session count.
#[derive(Debug, Clone)]
pub struct BaselinePoint {
    /// Concurrent sessions (= OS threads spawned).
    pub sessions: usize,
    /// Wall-clock time, ms.
    pub wall_ms: f64,
    /// Windows per wall-clock second.
    pub windows_per_sec: f64,
}

/// One width's determinism check at the smallest count (eviction-free
/// config): M:N totals vs the round-robin oracle.
#[derive(Debug, Clone)]
pub struct GuardPoint {
    /// Crew width checked.
    pub workers: usize,
    /// Pages hit by the M:N run.
    pub pages_hit: u64,
    /// Pages hit by round-robin (the oracle).
    pub rr_pages_hit: u64,
    /// Evictions observed (must be 0 for the totals contract to apply).
    pub evictions: u64,
    /// Wall-clock of the M:N run, ms.
    pub wall_ms: f64,
    /// Wall-clock of the round-robin run, ms.
    pub rr_wall_ms: f64,
}

impl GuardPoint {
    /// True when this width reproduced round-robin's accounting exactly.
    pub fn matches(&self) -> bool {
        self.pages_hit == self.rr_pages_hit && self.evictions == 0
    }
}

/// A full `fig_scale` sweep.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Scale factor the sweep ran at.
    pub scale: f64,
    /// Queries per session.
    pub queries_per_session: usize,
    /// Machine parallelism (`SCOUT_THREADS`-aware).
    pub max_parallelism: usize,
    /// One entry per (session count × worker count), sweep order.
    pub points: Vec<ScalePoint>,
    /// Thread-per-session baseline at the smallest count.
    pub baseline: BaselinePoint,
    /// One determinism check per width, at the smallest count.
    pub guards: Vec<GuardPoint>,
    /// Fault-injection plan of the sweep (always disabled here; recorded
    /// so every bench artifact states its fault knobs, ISSUE 8).
    pub faults: scout_storage::FaultPlan,
}

impl ScaleReport {
    /// Widths whose eviction-free totals diverged from round-robin — the
    /// primary CI guard; must stay 0.
    pub fn mn_vs_rr_pages_hit_mismatches(&self) -> u64 {
        self.guards.iter().filter(|g| !g.matches()).count() as u64
    }

    /// Width-1 guard runs slower than 2× round-robin — width 1 runs the
    /// identical loop, so anything beyond noise is dispatch overhead.
    /// Must stay 0.
    pub fn mn_w1_regressions(&self) -> u64 {
        self.guards
            .iter()
            .filter(|g| g.workers == 1 && g.wall_ms > 2.0 * g.rr_wall_ms.max(1.0))
            .count() as u64
    }

    /// M:N (at machine parallelism) throughput over thread-per-session
    /// throughput at the baseline's session count. Recorded, not
    /// CI-guarded: single-core CI runners cannot measure parallelism.
    pub fn threaded_speedup(&self) -> f64 {
        let best = self
            .points
            .iter()
            .filter(|p| p.sessions == self.baseline.sessions)
            .map(|p| p.windows_per_sec)
            .fold(0.0f64, f64::max);
        if self.baseline.windows_per_sec > 0.0 {
            best / self.baseline.windows_per_sec
        } else {
            0.0
        }
    }

    /// Serializes the report as pretty-printed JSON (no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&crate::meta_json("scale"));
        out.push_str(&format!(
            "  \"config\": {{ \"scale\": {:.2}, \"queries_per_session\": {}, \
             \"schedule\": \"work-stealing\", \"workers\": {:?}, \"max_parallelism\": {}, \
             \"tenants\": {}, \"seed\": {}, {}, {} }},\n",
            self.scale,
            self.queries_per_session,
            {
                let mut widths: Vec<usize> = self.points.iter().map(|p| p.workers).collect();
                widths.sort_unstable();
                widths.dedup();
                widths
            },
            self.max_parallelism,
            TENANTS,
            seed(),
            crate::faults_json(&self.faults),
            crate::batch_json(&scout_storage::BatchPlan::default()),
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"sessions\": {}, \"workers\": {}, \"wall_ms\": {:.1}, \
                 \"windows_per_sec\": {:.0}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"pages_total\": {}, \"pages_hit\": {}, \
                 \"evictions\": {}, \"steals\": {}, \"parks\": {}, \"shed\": {}, \
                 \"rounds\": {} }}{}\n",
                p.sessions,
                p.workers,
                p.wall_ms,
                p.windows_per_sec,
                p.p50_us,
                p.p95_us,
                p.p99_us,
                p.pages_total,
                p.pages_hit,
                p.evictions,
                p.steals,
                p.parks,
                p.shed,
                p.rounds,
                comma
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"baseline\": {{ \"schedule\": \"threaded\", \"sessions\": {}, \
             \"wall_ms\": {:.1}, \"windows_per_sec\": {:.0} }},\n",
            self.baseline.sessions, self.baseline.wall_ms, self.baseline.windows_per_sec
        ));
        out.push_str("  \"guard\": {\n");
        for g in &self.guards {
            out.push_str(&format!(
                "    \"width_{}\": {{ \"pages_hit\": {}, \"rr_pages_hit\": {}, \
                 \"evictions\": {}, \"wall_ms\": {:.1}, \"rr_wall_ms\": {:.1} }},\n",
                g.workers, g.pages_hit, g.rr_pages_hit, g.evictions, g.wall_ms, g.rr_wall_ms
            ));
        }
        out.push_str(&format!(
            "    \"threaded_speedup\": {:.2},\n    \"mn_vs_rr_pages_hit_mismatches\": {},\n    \
             \"mn_w1_regressions\": {}\n  }}\n}}\n",
            self.threaded_speedup(),
            self.mn_vs_rr_pages_hit_mismatches(),
            self.mn_w1_regressions()
        ));
        out
    }
}

/// The fleet: `count` sessions cycling over a pool of guided streams,
/// spread round-robin across [`TENANTS`] tenants. [`StraightLine`] keeps
/// per-query prediction cost trivial — this sweep measures the scheduler,
/// not the predictor.
fn build_sessions(count: usize, streams: &[Vec<QueryRegion>]) -> Vec<Session> {
    (0..count)
        .map(|i| {
            Session::new(i, Box::new(StraightLine::new()), streams[i % streams.len()].clone())
                .with_tenant(i % TENANTS)
        })
        .collect()
}

fn run_timed(
    engine: &MultiSessionExecutor,
    bed: &TestBed,
    sessions: Vec<Session>,
) -> (MultiSessionReport, f64) {
    let ctx = bed.ctx_rtree();
    let t0 = Instant::now();
    let report = engine.run(&ctx, sessions);
    (report, t0.elapsed().as_secs_f64() * 1_000.0)
}

fn windows_per_sec(report: &MultiSessionReport, wall_ms: f64) -> f64 {
    let windows: usize = report.sessions.iter().map(|s| s.queries).sum();
    if wall_ms > 0.0 {
        windows as f64 / (wall_ms / 1_000.0)
    } else {
        0.0
    }
}

/// Runs the sweep at `scale_factor` (1.0 = 1k/10k/100k sessions; CI uses
/// 0.1 for 100/1k/10k). Deterministic in `seed` for all simulated
/// quantities; only wall-clock fields vary per host.
pub fn run(scale_factor: f64, seed: u64) -> ScaleReport {
    let dataset = crate::neuron_dataset_with_objects(20_000);
    let bed = TestBed::with_page_capacity(dataset, 32);
    let queries_per_session = ((8.0 * scale_factor).round() as usize).clamp(2, 8);
    let params =
        SequenceParams { length: queries_per_session, ..SequenceParams::sensitivity_default() };
    let streams: Vec<Vec<QueryRegion>> =
        generate_sequences(&bed.dataset, &params, STREAM_POOL, seed)
            .into_iter()
            .map(|s| s.regions)
            .collect();

    // Pressure config for the throughput sweep: a shared cache far smaller
    // than the working set, so admission-relevant contention is real.
    let pressure = ExecutorConfig { window_ratio: 1.6, cache_pages: 512, ..Default::default() };
    let mut counts: Vec<usize> = [1_000.0, 10_000.0, 100_000.0]
        .iter()
        .map(|c| ((c * scale_factor) as usize).max(20))
        .collect();
    counts.dedup();
    let mut widths = vec![1, 2, 4, default_parallelism()];
    widths.sort_unstable();
    widths.dedup();

    let mut points = Vec::new();
    for &count in &counts {
        for &workers in &widths {
            let engine = MultiSessionExecutor::new(MultiSessionConfig {
                exec: pressure,
                shards: 16,
                schedule: Schedule::WorkStealing { workers },
                admission: AdmissionControl::unlimited(),
                ..Default::default()
            });
            let (report, wall_ms) = run_timed(&engine, &bed, build_sessions(count, &streams));
            let sched = report.scheduler.expect("work-stealing attaches counters");
            points.push(ScalePoint {
                sessions: count,
                workers,
                wall_ms,
                windows_per_sec: windows_per_sec(&report, wall_ms),
                p50_us: report.residual.p50,
                p95_us: report.residual.p95,
                p99_us: report.residual.p99,
                pages_total: report.total_pages(),
                pages_hit: report.total_pages_hit(),
                evictions: report.cache.evictions,
                steals: sched.steals,
                parks: sched.parks,
                shed: sched.shed,
                rounds: sched.rounds,
            });
        }
    }

    // Thread-per-session baseline, smallest count only: the point of the
    // M:N scheduler is that this does not scale.
    let smallest = counts[0];
    let baseline = {
        let engine = MultiSessionExecutor::new(MultiSessionConfig {
            exec: pressure,
            shards: 16,
            schedule: Schedule::Threaded,
            ..Default::default()
        });
        let (report, wall_ms) = run_timed(&engine, &bed, build_sessions(smallest, &streams));
        BaselinePoint {
            sessions: smallest,
            wall_ms,
            windows_per_sec: windows_per_sec(&report, wall_ms),
        }
    };

    // Determinism guard, smallest count, eviction-free config: the cache
    // holds the whole layout and uses a single shard, so per-shard capacity
    // equals the page count and eviction is structurally impossible (16
    // shards would split the budget and let a skewed shard overflow even
    // though the total fits). Totals must equal round-robin at every width.
    let ample = ExecutorConfig {
        window_ratio: 8.0,
        cache_pages: bed.rtree.layout().page_count(),
        ..Default::default()
    };
    let rr_engine = MultiSessionExecutor::new(MultiSessionConfig {
        exec: ample,
        shards: 1,
        schedule: Schedule::RoundRobin,
        ..Default::default()
    });
    let (rr, rr_wall_ms) = run_timed(&rr_engine, &bed, build_sessions(smallest, &streams));
    let guards = widths
        .iter()
        .map(|&workers| {
            let engine = MultiSessionExecutor::new(MultiSessionConfig {
                exec: ample,
                shards: 1,
                schedule: Schedule::WorkStealing { workers },
                ..Default::default()
            });
            let (ws, wall_ms) = run_timed(&engine, &bed, build_sessions(smallest, &streams));
            GuardPoint {
                workers,
                pages_hit: ws.total_pages_hit(),
                rr_pages_hit: rr.total_pages_hit(),
                evictions: ws.cache.evictions.max(rr.cache.evictions),
                wall_ms,
                rr_wall_ms,
            }
        })
        .collect();

    ScaleReport {
        scale: scale_factor,
        queries_per_session,
        max_parallelism: default_parallelism(),
        points,
        baseline,
        guards,
        faults: pressure.faults,
    }
}

/// Entry point shared by the bin and the bench target: runs at the
/// `SCOUT_BENCH_SCALE` scale and returns (report, json).
pub fn run_default() -> (ScaleReport, String) {
    let report = run(scale(), seed());
    let json = report.to_json();
    (report, json)
}
