//! Emits the batched-I/O submission artifact.
//!
//! Runs the `fig_batch` sweep ([`scout_bench::batch`]): the 64-session
//! shared-structure fleet with the demand/window batch lanes on and off
//! across crew widths, the eviction-free pages-hit parity guard against
//! the unbatched round-robin oracle, and the width-1 byte-identity
//! checks. Prints the sweep table and writes `BENCH_batch.json` into the
//! current directory (run from the repo root; CI uploads the file and
//! fails the job when the `guard` block reports
//! `batch_pages_hit_mismatches != 0` or `batch_w1_regressions != 0`).
//!
//! Run with: `cargo run -p scout-bench --bin batch --release`

use scout_sim::report::Table;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let (report, json) = scout_bench::batch::run_default();

    let mut t = Table::new([
        "workers",
        "batched",
        "wall ms",
        "disk busy ms",
        "windows/s",
        "pages",
        "unique reads",
        "coalesced",
    ]);
    for p in &report.throughput {
        t.row([
            p.workers.to_string(),
            p.batched.to_string(),
            format!("{:.0}", p.wall_ms),
            format!("{:.0}", p.disk_busy_ms),
            format!("{:.0}", p.windows_per_sec),
            p.pages_total.to_string(),
            p.unique_pages.to_string(),
            p.coalesced.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "coalesced speedup (width 1, on/off): {:.2}x over {} sessions x {} queries",
        report.coalesced_speedup(),
        report.sessions,
        report.queries_per_session
    );
    println!(
        "guard: batch_pages_hit_mismatches = {}, batch_w1_regressions = {}",
        report.batch_pages_hit_mismatches(),
        report.batch_w1_regressions()
    );
    eprintln!("batch sweep in {:.1?}", t0.elapsed());
    std::fs::write("BENCH_batch.json", json).expect("write BENCH_batch.json");
    eprintln!("wrote BENCH_batch.json");
}
