//! Emits the M:N scheduler scaling artifact.
//!
//! Runs the `fig_scale` sweep ([`scout_bench::scale`]): 1k/10k/100k
//! concurrent sessions × worker counts over the work-stealing
//! [`SessionScheduler`](scout_sim::SessionScheduler), plus the
//! thread-per-session baseline and the round-robin determinism guard.
//! Prints the sweep table and writes `BENCH_scale.json` into the current
//! directory (run from the repo root; CI uploads the file and fails the
//! job when the `guard` block reports `mn_vs_rr_pages_hit_mismatches != 0`
//! or `mn_w1_regressions != 0`).
//!
//! Run with: `cargo run -p scout-bench --bin scale --release`
//! (CI uses `SCOUT_BENCH_SCALE=0.1` for a 100/1k/10k sweep.)

use scout_sim::report::Table;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let (report, json) = scout_bench::scale::run_default();

    let mut t = Table::new([
        "sessions",
        "workers",
        "wall ms",
        "windows/s",
        "p95 ms",
        "steals",
        "parks",
        "evictions",
    ]);
    for p in &report.points {
        t.row([
            p.sessions.to_string(),
            p.workers.to_string(),
            format!("{:.0}", p.wall_ms),
            format!("{:.0}", p.windows_per_sec),
            format!("{:.3}", p.p95_us / 1_000.0),
            p.steals.to_string(),
            p.parks.to_string(),
            p.evictions.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "threaded baseline @ {} sessions: {:.0} windows/s ({:.0} ms) — M:N speedup {:.2}x",
        report.baseline.sessions,
        report.baseline.windows_per_sec,
        report.baseline.wall_ms,
        report.threaded_speedup()
    );
    println!(
        "guard: mn_vs_rr_pages_hit_mismatches = {}, mn_w1_regressions = {}",
        report.mn_vs_rr_pages_hit_mismatches(),
        report.mn_w1_regressions()
    );
    eprintln!("scale sweep in {:.1?}", t0.elapsed());
    std::fs::write("BENCH_scale.json", json).expect("write BENCH_scale.json");
    eprintln!("wrote BENCH_scale.json");
}
