//! Emits the fault-injection degradation artifact.
//!
//! Runs the `fig_faults` sweep ([`scout_bench::faults`]): base fault
//! rates × {0, 0.5, 1, 2, 4} over No Prefetching / SCOUT / Hybrid,
//! recording hit rate, residual latency and the recovery ledger at each
//! level. Prints the sweep table and writes `BENCH_faults.json` into the
//! current directory (run from the repo root; CI uploads the file and
//! fails the job when the `guard` block reports `corruption_served != 0`
//! or `zero_fault_trace_mismatches != 0`).
//!
//! Run with: `cargo run -p scout-bench --bin faults --release`

use scout_sim::report::Table;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let (report, json) = scout_bench::faults::run_default();

    let mut t = Table::new([
        "fault x",
        "method",
        "hit rate",
        "mean ms",
        "p95 ms",
        "injected",
        "recovered",
        "dropped",
        "failed",
        "trips",
    ]);
    for p in &report.points {
        t.row([
            format!("{:.1}", p.fault_scale),
            p.method.clone(),
            format!("{:.3}", p.hit_rate),
            format!("{:.3}", p.mean_residual_us / 1_000.0),
            format!("{:.3}", p.p95_residual_us / 1_000.0),
            p.faults.injected().to_string(),
            p.faults.recovered.to_string(),
            p.faults.dropped_prefetch.to_string(),
            p.failed_queries.to_string(),
            p.faults.breaker_trips.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "guard: corruption_served = {}, zero_fault_trace_mismatches = {}",
        report.corruption_served(),
        report.zero_fault_trace_mismatches
    );
    eprintln!("fault sweep in {:.1?}", t0.elapsed());
    std::fs::write("BENCH_faults.json", json).expect("write BENCH_faults.json");
    eprintln!("wrote BENCH_faults.json");
}
