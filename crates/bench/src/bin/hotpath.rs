//! Emits the hot-path perf-trajectory artifact.
//!
//! Runs the seed-vs-flat kernel microbenchmarks and the
//! incremental-vs-full overlap sweeps ([`scout_bench::hotpath`]) on all
//! three synthetic datasets and writes `BENCH_hotpath.json` into the
//! current directory (run from the repo root; CI uploads the file as an
//! artifact and fails the job when the `guard` block reports fallbacks on
//! the 0.9-overlap sweep).
//!
//! Run with: `cargo run -p scout-bench --bin hotpath --release`

use std::time::Instant;

fn main() {
    let iters: usize =
        std::env::var("SCOUT_HOTPATH_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(12);
    let t0 = Instant::now();
    let report = scout_bench::hotpath::run(iters);
    let json = report.to_json();
    eprintln!("{json}");
    eprintln!("hotpath run in {:.1?}", t0.elapsed());
    for d in &report.datasets {
        eprintln!("[{}] {} objects, {} pages", d.name, d.objects, d.pages);
        for k in &d.kernels {
            eprintln!(
                "  {:>16}: seed {:>10.1} µs  flat {:>10.1} µs  ({:.2}x)",
                k.name,
                k.seed_us,
                k.flat_us,
                k.speedup()
            );
        }
    }
    for d in &report.incremental {
        eprintln!("[{}] incremental sweep, {} objects per window", d.name, d.window_objects);
        for s in &d.sweeps {
            eprintln!(
                "  overlap {:>3.1}: full {:>9.1} µs  incremental {:>9.1} µs  ({:.2}x, {} inc / {} fb)",
                s.overlap,
                s.full_us,
                s.incremental_us,
                s.speedup(),
                s.incremental_builds,
                s.fallback_builds
            );
        }
    }
    eprintln!(
        "parallel grid_hash sweep (tier {}, machine parallelism {})",
        report.tier, report.max_parallelism
    );
    for p in &report.parallel {
        let best = p.best();
        eprint!("[{}] serial {:>9.1} µs  |", p.name, p.serial_us);
        for t in &p.sweep {
            eprint!("  {}t {:>9.1} µs", t.threads, t.us);
        }
        eprintln!("  | best {}t ({:.2}x)", best.threads, p.best_speedup());
    }
    std::fs::write("BENCH_hotpath.json", json).expect("write BENCH_hotpath.json");
    eprintln!("wrote BENCH_hotpath.json");
}
