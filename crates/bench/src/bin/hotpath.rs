//! Emits the hot-path perf-trajectory artifact.
//!
//! Runs the seed-vs-flat kernel microbenchmarks
//! ([`scout_bench::hotpath`]) and writes `BENCH_hotpath.json` into the
//! current directory (run from the repo root; CI uploads the file as an
//! artifact).
//!
//! Run with: `cargo run -p scout-bench --bin hotpath --release`

use std::time::Instant;

fn main() {
    let iters: usize =
        std::env::var("SCOUT_HOTPATH_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(12);
    let t0 = Instant::now();
    let report = scout_bench::hotpath::run(iters);
    let json = report.to_json();
    eprintln!("{json}");
    eprintln!("hotpath run in {:.1?}", t0.elapsed());
    for k in &report.kernels {
        eprintln!(
            "  {:>16}: seed {:>10.1} µs  flat {:>10.1} µs  ({:.2}x)",
            k.name,
            k.seed_us,
            k.flat_us,
            k.speedup()
        );
    }
    std::fs::write("BENCH_hotpath.json", json).expect("write BENCH_hotpath.json");
    eprintln!("wrote BENCH_hotpath.json");
}
