//! Emits the flight-recorder telemetry artifact.
//!
//! Runs the `fig_obs` sweep ([`scout_bench::obs`]): the fig_scale-style
//! fleet with telemetry disarmed vs armed (overhead), the render
//! byte-identity checks (armed telemetry must be invisible in every
//! report), and the armed width-1 JSONL event-stream byte-identity
//! checks. Prints the summary and writes `BENCH_obs.json` into the
//! current directory (run from the repo root; CI uploads the file and
//! fails the job when the `guard` block reports
//! `telemetry_disabled_mismatches != 0`, `jsonl_rerun_mismatches != 0`,
//! or `telemetry_overhead_regressions != 0`).
//!
//! Run with: `cargo run -p scout-bench --bin obs --release`

use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let (report, json) = scout_bench::obs::run_default();

    println!(
        "overhead: disarmed {:.0} windows/s, armed {:.0} windows/s (ratio {:.3}) over {} \
         sessions x {} queries, {} workers",
        report.disarmed.windows_per_sec,
        report.armed.windows_per_sec,
        report.armed_ratio(),
        report.sessions,
        report.queries_per_session,
        report.workers,
    );
    println!(
        "flight: {} events ({} dropped), {} queries served, {} windows opened, {} pages \
         prefetched",
        report.events,
        report.dropped_events,
        report.queries_served,
        report.windows_opened,
        report.prefetch_pages,
    );
    for line in &report.excerpt {
        println!("  {line}");
    }
    println!(
        "guard: telemetry_disabled_mismatches = {}, jsonl_rerun_mismatches = {}, \
         telemetry_overhead_regressions = {}",
        report.telemetry_disabled_mismatches(),
        report.jsonl_rerun_mismatches(),
        report.telemetry_overhead_regressions(),
    );
    eprintln!("obs sweep in {:.1?}", t0.elapsed());
    std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
    eprintln!("wrote BENCH_obs.json");
}
