//! Gap-workload smoke run (Figure 12 path): SCOUT vs SCOUT-OPT with
//! 25 µm gaps between queries.
//!
//! Run with: `cargo run -p scout-bench --bin smoke_gaps --release`

use scout_baselines::{Ewma, StraightLine};
use scout_bench::run_roster;
use scout_core::{Scout, ScoutOpt};
use scout_sim::report::{pct, speedup, Table};
use scout_sim::{Prefetcher, TestBed};
use scout_synth::{generate_neurons, NeuronParams};

fn main() {
    let dataset = generate_neurons(&NeuronParams::with_target_objects(1_300_000), 42);
    let bed = TestBed::new(dataset);
    let bench = scout_sim::workloads::VIS_GAPS_HIGH;
    let mut roster: Vec<Box<dyn Prefetcher>> = vec![
        Box::new(Ewma::paper_best()),
        Box::new(StraightLine::new()),
        Box::new(Scout::with_defaults()),
        Box::new(ScoutOpt::with_defaults()),
    ];
    let results = run_roster(&bed, &mut roster, &bench.sequence, 6, bench.window_ratio, 7);
    let mut table = Table::new(["Prefetcher", "Hit Rate [%]", "Speedup", "Prefetch", "Gap Pages"]);
    for m in &results {
        table.row([
            m.name.clone(),
            pct(m.hit_rate),
            speedup(m.speedup),
            m.prefetch_pages.to_string(),
            m.gap_pages.to_string(),
        ]);
    }
    println!("{}", table.render());
}
