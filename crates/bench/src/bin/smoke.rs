//! Quick end-to-end smoke run: one microbenchmark, full roster, small
//! scale. Used to sanity-check the pipeline and calibrate the cost model.
//!
//! Run with: `cargo run -p scout-bench --bin smoke --release`

use scout_bench::{figure11_roster, run_roster};
use scout_index::SpatialIndex;
use scout_sim::report::{pct, speedup, Table};
use scout_sim::TestBed;
use scout_synth::{generate_neurons, NeuronParams};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let dataset = generate_neurons(&NeuronParams::with_target_objects(1_300_000), 42);
    eprintln!(
        "dataset: {} objects in {:.0?} (density {:.2e}/µm³)",
        dataset.len(),
        t0.elapsed(),
        dataset.density()
    );
    let t1 = Instant::now();
    let bed = TestBed::new(dataset);
    eprintln!("indexes: {} pages in {:.0?}", bed.rtree.layout().page_count(), t1.elapsed());

    let bench = scout_sim::workloads::ADHOC_PATTERN;
    let t2 = Instant::now();
    let mut roster = figure11_roster();
    roster.push(scout_bench::no_prefetch());
    roster.push(Box::new(scout_core::Scout::new(scout_core::ScoutConfig {
        max_prefetch_locations: 3,
        incremental_steps: 3,
        ..Default::default()
    })));
    roster.push(Box::new(scout_core::Scout::new(scout_core::ScoutConfig {
        max_prefetch_locations: 1,
        incremental_steps: 4,
        ..Default::default()
    })));
    let results = run_roster(&bed, &mut roster, &bench.sequence, 8, bench.window_ratio, 7);
    eprintln!("evaluation in {:.0?}", t2.elapsed());

    // Workload shape diagnostics.
    {
        use scout_sim::{run_sequence, ExecutorConfig, NoPrefetch};
        let seqs = scout_synth::generate_sequences(&bed.dataset, &bench.sequence, 2, 7);
        let ctx = bed.ctx_rtree();
        let mut np = NoPrefetch;
        let trace = run_sequence(&ctx, &mut np, &seqs[0].regions, &ExecutorConfig::default());
        let pages: f64 = trace.queries.iter().map(|q| q.pages_total as f64).sum::<f64>()
            / trace.queries.len() as f64;
        let objs: f64 = trace.queries.iter().map(|q| q.result_objects as f64).sum::<f64>()
            / trace.queries.len() as f64;
        eprintln!("avg result pages/query: {pages:.1}, objects/query: {objs:.1}");
        // SCOUT candidate-set trajectory within one sequence.
        let mut scout = scout_core::Scout::with_defaults();
        let strace = run_sequence(&ctx, &mut scout, &seqs[0].regions, &ExecutorConfig::default());
        let cands: Vec<usize> = strace.queries.iter().map(|q| q.prediction.candidates).collect();
        let comps: Vec<usize> =
            strace.queries.iter().map(|q| q.prediction.graph_components).collect();
        eprintln!("SCOUT components/query: {comps:?}");
        let verts: Vec<usize> =
            strace.queries.iter().map(|q| q.prediction.graph_vertices).collect();
        let edges: Vec<usize> = strace.queries.iter().map(|q| q.prediction.graph_edges).collect();
        let hits: Vec<String> =
            strace.queries.iter().map(|q| format!("{:.0}", q.hit_rate() * 100.0)).collect();
        eprintln!("SCOUT candidates/query: {cands:?}");
        eprintln!("SCOUT vertices[0..5]: {:?} edges[0..5]: {:?}", &verts[..5], &edges[..5]);
        eprintln!("SCOUT per-query hit%: {hits:?}");
        // Prediction-error comparison: distance from the true next center
        // to SCOUT's best planned full-size region center vs straight line.
        {
            use scout_sim::{PrefetchRequest, Prefetcher};
            let regions = &seqs[0].regions;
            let mut scout = scout_core::Scout::with_defaults();
            scout.reset();
            let mut scout_err = Vec::new();
            let mut sl_err = Vec::new();
            for i in 0..regions.len() - 1 {
                let result = ctx.index.range_query(ctx.objects, &regions[i]);
                scout.observe(&ctx, &regions[i], &result);
                let plan = scout.plan(&ctx);
                let truth = regions[i + 1].center();
                let best = plan
                    .requests
                    .iter()
                    .filter_map(|r| match r {
                        PrefetchRequest::Region(q) => Some(q.center().distance(truth)),
                        _ => None,
                    })
                    .fold(f64::INFINITY, f64::min);
                if best.is_finite() {
                    scout_err.push(best);
                }
                if i >= 1 {
                    let pred = regions[i].center() * 2.0 - regions[i - 1].center();
                    sl_err.push(pred.distance(truth));
                }
            }
            let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
            eprintln!(
                "prediction error (µm, query side {:.1}): SCOUT best-region {:.1}, straight-line {:.1}",
                regions[0].side(), mean(&scout_err), mean(&sl_err)
            );
            // Error of the TOP-RANKED location's final (full-size) region.
            let mut scout2 = scout_core::Scout::with_defaults();
            scout2.reset();
            let steps = scout2.config().incremental_steps;
            let mut top_err = Vec::new();
            for i in 0..regions.len() - 1 {
                let result = ctx.index.range_query(ctx.objects, &regions[i]);
                scout2.observe(&ctx, &regions[i], &result);
                let plan = scout2.plan(&ctx);
                let truth = regions[i + 1].center();
                if plan.requests.len() >= steps {
                    if let PrefetchRequest::Region(q) = &plan.requests[steps - 1] {
                        top_err.push(q.center().distance(truth));
                    }
                }
            }
            eprintln!("top-ranked location error: {:.1} µm (n={})", mean(&top_err), top_err.len());
        }
    }

    let mut table = Table::new(["Prefetcher", "Hit Rate [%]", "Speedup", "Prefetch Pages"]);
    for m in &results {
        table.row([
            m.name.clone(),
            pct(m.hit_rate),
            speedup(m.speedup),
            m.prefetch_pages.to_string(),
        ]);
    }
    println!("{}", table.render());
}
