//! Emits the adaptive-prediction perf artifact.
//!
//! Runs the SCOUT vs Markov vs Hybrid sweep ([`scout_bench::adaptive`])
//! across the three synthetic datasets and the four history-sensitivity
//! workloads, prints the comparison tables, and writes
//! `BENCH_adaptive.json` into the current directory (run from the repo
//! root; CI uploads the file and fails the job when the `guard` block
//! reports `revisit_regressions != 0` — the hybrid must never hit fewer
//! pages than plain SCOUT on a revisit loop).
//!
//! Run with: `cargo run -p scout-bench --bin adaptive --release`

use scout_sim::report::{pct, Table};
use std::time::Instant;

fn main() {
    let scale: f64 =
        std::env::var("SCOUT_ADAPTIVE_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let t0 = Instant::now();
    let report = scout_bench::adaptive::run(scale, scout_bench::seed());
    let json = report.to_json();

    for d in &report.datasets {
        println!("== {} ({} objects, {} pages) ==", d.name, d.objects, d.pages);
        let mut t = Table::new(["workload", "method", "hit %", "pages hit", "response ms"]);
        for w in &d.workloads {
            for m in &w.methods {
                t.row([
                    w.workload.to_string(),
                    m.name.clone(),
                    pct(m.hit_rate()),
                    m.pages_hit.to_string(),
                    format!("{:.1}", m.response_us / 1_000.0),
                ]);
            }
        }
        println!("{}", t.render());
    }
    println!("revisit regressions (hybrid < SCOUT): {}", report.revisit_regressions());
    eprintln!("adaptive sweep in {:.1?}", t0.elapsed());
    std::fs::write("BENCH_adaptive.json", json).expect("write BENCH_adaptive.json");
    eprintln!("wrote BENCH_adaptive.json");
}
