//! Hot-path kernel microbenchmarks: seed vs flat implementations.
//!
//! Times the four per-query kernels the zero-allocation refactor targets —
//! `grid_hash`, `components`, `pages_in_region`, `k_nearest_pages` — on a
//! synthetic 100k-object neuron dataset, against the checked-in seed
//! implementations ([`scout_core::reference::ReferenceGraph`],
//! [`scout_index::reference::ReferenceRTree`]). Both sides run in the same
//! process on the same inputs, so the recorded ratio is robust to host
//! speed; the absolute µs are machine-dependent.
//!
//! The `hotpath` **bin** writes the machine-readable result to
//! `BENCH_hotpath.json` (the perf-trajectory artifact CI uploads); the
//! `hotpath` **bench target** runs a reduced iteration count and prints
//! the JSON, serving as the compile + smoke check.

use scout_core::reference::ReferenceGraph;
use scout_core::{ResultGraph, ScoutConfig};
use scout_geometry::{Aabb, ObjectId, QueryRegion, Vec3};
use scout_index::reference::ReferenceRTree;
use scout_index::{KnnScratch, RTree, SpatialIndex};
use scout_sim::QueryScratch;
use scout_synth::{generate_neurons, NeuronParams};
use std::time::Instant;

/// One kernel's before/after wall-clock measurement, in µs per call.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (JSON key).
    pub name: &'static str,
    /// Seed implementation, µs per call.
    pub seed_us: f64,
    /// Flat (CSR / SoA / scratch-reusing) implementation, µs per call.
    pub flat_us: f64,
}

impl KernelTiming {
    /// seed / flat — how many times faster the flat implementation is.
    pub fn speedup(&self) -> f64 {
        self.seed_us / self.flat_us.max(1e-9)
    }
}

/// A full hot-path measurement run.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Dataset object count.
    pub objects: usize,
    /// Pages in the R-tree layout.
    pub pages: usize,
    /// Result objects fed to the graph kernels.
    pub result_objects: usize,
    /// Timed iterations per kernel.
    pub iters: usize,
    /// Grid resolution used for grid hashing.
    pub grid_resolution: u32,
    /// Per-kernel timings.
    pub kernels: Vec<KernelTiming>,
}

impl HotpathReport {
    /// The timing of one kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelTiming> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Serializes the report as pretty-printed JSON (no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"dataset\": {{ \"objects\": {}, \"pages\": {}, \"result_objects\": {} }},\n",
            self.objects, self.pages, self.result_objects
        ));
        out.push_str(&format!(
            "  \"config\": {{ \"iters\": {}, \"grid_resolution\": {} }},\n",
            self.iters, self.grid_resolution
        ));
        out.push_str("  \"kernels\": {\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let comma = if i + 1 < self.kernels.len() { "," } else { "" };
            out.push_str(&format!(
                "    \"{}\": {{ \"seed_us\": {:.2}, \"flat_us\": {:.2}, \"speedup\": {:.2} }}{}\n",
                k.name,
                k.seed_us,
                k.flat_us,
                k.speedup(),
                comma
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

/// Times `f` after one warmup call; returns µs/call.
///
/// Runs at least `min_iters` calls and keeps going until ~50 ms of wall
/// clock have accumulated (capped at 1000 × `min_iters`), so microsecond
/// kernels get enough calls for a stable mean.
fn time_us(min_iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: fault pages in, grow scratch capacity
    let mut calls = 0usize;
    let t0 = Instant::now();
    loop {
        f();
        calls += 1;
        if (calls >= min_iters && t0.elapsed().as_secs_f64() >= 0.05)
            || calls >= min_iters.saturating_mul(1000)
        {
            break;
        }
    }
    t0.elapsed().as_secs_f64() * 1e6 / calls as f64
}

/// Runs the hot-path kernels on a ~100k-object neuron dataset.
///
/// `iters` is the timed iteration count per kernel (the bin uses enough
/// for stable numbers; the bench smoke target uses a couple).
pub fn run(iters: usize) -> HotpathReport {
    let iters = iters.max(1);
    let dataset = generate_neurons(&NeuronParams::with_target_objects(100_000), crate::seed());
    let objects = &dataset.objects;
    let result_ids: Vec<ObjectId> = objects.iter().map(|o| o.id).collect();
    let region = QueryRegion::from_aabb(dataset.bounds);
    let resolution = ScoutConfig::default().grid_resolution;
    let simplification = ScoutConfig::default().simplification;

    let tree = RTree::bulk_load(objects);
    let seed_tree = ReferenceRTree::bulk_load(objects);
    let mut kernels = Vec::new();

    // grid_hash: full result-graph construction over the result ids.
    let mut scratch = QueryScratch::new();
    let mut graph = ResultGraph::default();
    let flat_us = time_us(iters, || {
        graph.build_grid_hash(
            &mut scratch,
            objects,
            &result_ids,
            &region,
            resolution,
            simplification,
        );
    });
    let seed_us = time_us(iters, || {
        let (g, _) =
            ReferenceGraph::grid_hash(objects, &result_ids, &region, resolution, simplification);
        std::hint::black_box(g.vertex_count());
    });
    kernels.push(KernelTiming { name: "grid_hash", seed_us, flat_us });

    // components: labeling over the built graphs.
    let (seed_graph, _) =
        ReferenceGraph::grid_hash(objects, &result_ids, &region, resolution, simplification);
    let flat_us = time_us(iters, || {
        let n = graph.components_into(&mut scratch.components, &mut scratch.stack);
        std::hint::black_box(n);
    });
    let seed_us = time_us(iters, || {
        let (_, n) = seed_graph.components();
        std::hint::black_box(n);
    });
    kernels.push(KernelTiming { name: "components", seed_us, flat_us });

    // pages_in_region: a query-sized window in the middle of the tissue.
    let center = dataset.bounds.center();
    let extent = dataset.bounds.extent() * 0.25;
    let window = Aabb::from_center_extent(center, extent);
    let flat_us = time_us(iters, || {
        std::hint::black_box(tree.pages_in_region(&window).len());
    });
    let seed_us = time_us(iters, || {
        std::hint::black_box(seed_tree.pages_in_region(&window).len());
    });
    kernels.push(KernelTiming { name: "pages_in_region", seed_us, flat_us });

    // k_nearest_pages: a sweep of probe points, k = 16.
    let probes: Vec<Vec3> = (0..32)
        .map(|i| {
            let t = i as f64 / 31.0;
            dataset.bounds.min + (dataset.bounds.max - dataset.bounds.min) * t
        })
        .collect();
    let mut knn_scratch = KnnScratch::new();
    let mut knn_out = Vec::new();
    let flat_us = time_us(iters, || {
        for &p in &probes {
            tree.k_nearest_pages_into(p, 16, &mut knn_scratch, &mut knn_out);
            std::hint::black_box(knn_out.len());
        }
    });
    let seed_us = time_us(iters, || {
        for &p in &probes {
            std::hint::black_box(seed_tree.k_nearest_pages(p, 16).len());
        }
    });
    kernels.push(KernelTiming {
        name: "k_nearest_pages",
        seed_us: seed_us / probes.len() as f64,
        flat_us: flat_us / probes.len() as f64,
    });

    HotpathReport {
        objects: objects.len(),
        pages: tree.layout().page_count(),
        result_objects: result_ids.len(),
        iters,
        grid_resolution: resolution,
        kernels,
    }
}
