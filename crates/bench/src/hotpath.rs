//! Hot-path kernel microbenchmarks: seed vs flat vs incremental.
//!
//! Two measurement families, both written to `BENCH_hotpath.json` (the
//! perf-trajectory artifact CI uploads):
//!
//! * **Kernels** — the four per-query kernels of the zero-allocation
//!   refactor (`grid_hash`, `components`, `pages_in_region`,
//!   `k_nearest_pages`) against the checked-in seed implementations
//!   ([`scout_core::reference::ReferenceGraph`],
//!   [`scout_index::reference::ReferenceRTree`]), on all three synthetic
//!   datasets (neuron tissue, lung airway mesh, road network).
//! * **Incremental** — amortized cost of
//!   [`ResultGraph::build_grid_hash_incremental`] vs the full
//!   [`ResultGraph::build_grid_hash`] over sliding result windows at
//!   controlled inter-query overlap (0.9 / 0.7 / 0.3 / 0.0). Windows
//!   slide along a Hilbert tour of the dataset (a structure-following
//!   result stream) under a fixed viewport lattice; the 0.0 sweep
//!   measures the fallback path (full rebuild + cache capture), which
//!   must stay within a few percent of the plain full build.
//!
//! Both sides of every comparison run in the same process on the same
//! inputs, so the recorded ratios are robust to host speed; the absolute
//! µs are machine-dependent.
//!
//! The `hotpath` **bin** writes the machine-readable result to
//! `BENCH_hotpath.json`; the `hotpath` **bench target** runs a reduced
//! iteration count and prints the JSON, serving as the compile + smoke
//! check. CI greps the JSON's `guard` block: a fallback on the
//! 0.9-overlap sweep fails the job (the delta path silently regressing to
//! full rebuilds would otherwise go unnoticed).

use scout_core::reference::ReferenceGraph;
use scout_core::{GraphBuildKind, ResultGraph, ScoutConfig};
use scout_geometry::hilbert::hilbert_indices_3d;
use scout_geometry::{Aabb, ObjectId, QueryRegion, SpatialObject, Vec3};
use scout_index::reference::ReferenceRTree;
use scout_index::{KnnScratch, RTree, SpatialIndex};
use scout_sim::{default_parallelism, QueryScratch};
use scout_synth::{
    generate_lung, generate_neurons, generate_roads, Dataset, LungParams, NeuronParams, RoadParams,
};
use std::time::Instant;

/// One kernel's before/after wall-clock measurement, in µs per call.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name (JSON key).
    pub name: &'static str,
    /// Seed implementation, µs per call.
    pub seed_us: f64,
    /// Flat (CSR / SoA / scratch-reusing) implementation, µs per call.
    pub flat_us: f64,
}

impl KernelTiming {
    /// seed / flat — how many times faster the flat implementation is.
    pub fn speedup(&self) -> f64 {
        self.seed_us / self.flat_us.max(1e-9)
    }
}

/// Kernel timings for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetKernels {
    /// Dataset name (JSON key).
    pub name: &'static str,
    /// Dataset object count.
    pub objects: usize,
    /// Pages in the R-tree layout.
    pub pages: usize,
    /// Result objects fed to the graph kernels.
    pub result_objects: usize,
    /// Per-kernel timings.
    pub kernels: Vec<KernelTiming>,
}

/// One overlap point of the incremental-vs-full sweep.
#[derive(Debug, Clone)]
pub struct OverlapSweep {
    /// Inter-query result overlap `|retained| / |window|`.
    pub overlap: f64,
    /// Timed queries per repetition (after warmup).
    pub queries: usize,
    /// Mean µs per query, full rebuild ([`ResultGraph::build_grid_hash`]).
    pub full_us: f64,
    /// Mean µs per query through the incremental entry point.
    pub incremental_us: f64,
    /// Timed builds served by delta repair.
    pub incremental_builds: u64,
    /// Timed builds that fell back to a full rebuild.
    pub fallback_builds: u64,
}

impl OverlapSweep {
    /// full / incremental — the amortized speedup at this overlap.
    pub fn speedup(&self) -> f64 {
        self.full_us / self.incremental_us.max(1e-9)
    }
}

/// The incremental sweep of one dataset.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Dataset name (JSON key).
    pub name: &'static str,
    /// Result objects per sliding window.
    pub window_objects: usize,
    /// One entry per overlap point (descending overlap).
    pub sweeps: Vec<OverlapSweep>,
}

/// One forced part width of the parallel grid-hash sweep.
#[derive(Debug, Clone)]
pub struct ThreadTiming {
    /// Forced build width (`ResultGraph::set_build_threads`).
    pub threads: usize,
    /// Mean µs per full grid-hash build at this width.
    pub us: f64,
}

/// The parallel grid-hash sweep of one dataset: the serial baseline
/// against forced fork-join widths over the same full-result build.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Dataset name (JSON key).
    pub name: &'static str,
    /// Result objects per build.
    pub result_objects: usize,
    /// Serial baseline (`build_threads = 1`), µs per build.
    pub serial_us: f64,
    /// One entry per forced width (ascending; includes width 1).
    pub sweep: Vec<ThreadTiming>,
}

impl ParallelReport {
    /// The fastest sweep point (the sweep always contains width 1, so
    /// "best" can never be worse than the serial structure itself).
    pub fn best(&self) -> &ThreadTiming {
        self.sweep.iter().min_by(|a, b| a.us.total_cmp(&b.us)).expect("sweep is never empty")
    }

    /// serial / best — the speedup of the best width.
    pub fn best_speedup(&self) -> f64 {
        self.serial_us / self.best().us.max(1e-9)
    }
}

/// A full hot-path measurement run.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Timed iterations per kernel.
    pub iters: usize,
    /// Grid resolution used for grid hashing.
    pub grid_resolution: u32,
    /// Dispatch tier the slice kernels ran under on this machine.
    pub tier: &'static str,
    /// `SCOUT_THREADS` / machine parallelism the auto width would use.
    pub max_parallelism: usize,
    /// Kernel timings per dataset; `datasets[0]` is the neuron tissue
    /// (the PR 3 trajectory numbers).
    pub datasets: Vec<DatasetKernels>,
    /// Incremental-vs-full sweeps per dataset.
    pub incremental: Vec<IncrementalReport>,
    /// Parallel grid-hash sweeps per dataset.
    pub parallel: Vec<ParallelReport>,
}

impl HotpathReport {
    /// The kernel timings of one dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&DatasetKernels> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// The timing of one kernel by name on the neuron dataset (the PR 3
    /// trajectory series).
    pub fn kernel(&self, name: &str) -> Option<&KernelTiming> {
        self.datasets.first().and_then(|d| d.kernels.iter().find(|k| k.name == name))
    }

    /// The incremental sweep of one dataset by name.
    pub fn incremental(&self, name: &str) -> Option<&IncrementalReport> {
        self.incremental.iter().find(|d| d.name == name)
    }

    /// The parallel sweep of one dataset by name.
    pub fn parallel(&self, name: &str) -> Option<&ParallelReport> {
        self.parallel.iter().find(|d| d.name == name)
    }

    /// Datasets whose best sweep point regressed more than 50 % below
    /// the serial baseline — the CI guard value. The sweep includes
    /// width 1, so a regression means even the forced serial structure
    /// drifted, not merely that this machine lacks cores. The margin is
    /// deliberately wide: the baseline and sweep are timed separately,
    /// and on shared CI runners two timings of the same width-1 build
    /// can differ by tens of percent from scheduling noise alone — the
    /// guard only needs to catch gross structural regressions.
    pub fn parallel_regressions(&self) -> u64 {
        self.parallel.iter().filter(|p| p.best().us > p.serial_us * 1.50).count() as u64
    }

    /// Timed fallback builds summed over every dataset's 0.9-overlap
    /// sweep — the CI guard value: at 0.9 overlap the delta path must
    /// always fire, so anything nonzero is a heuristic regression.
    pub fn overlap_0_9_fallbacks(&self) -> u64 {
        self.incremental
            .iter()
            .flat_map(|d| &d.sweeps)
            .filter(|s| (s.overlap - 0.9).abs() < 1e-9)
            .map(|s| s.fallback_builds)
            .sum()
    }

    /// Serializes the report as pretty-printed JSON (no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&crate::meta_json("hotpath"));
        out.push_str(&format!(
            "  \"config\": {{ \"iters\": {}, \"grid_resolution\": {}, \"tier\": \"{}\", \
             \"schedule\": \"fork-join\", \"workers\": {}, \"max_parallelism\": {}, {}, {} }},\n",
            self.iters,
            self.grid_resolution,
            self.tier,
            self.max_parallelism,
            self.max_parallelism,
            // Kernel timings never touch the simulated disk, so the fault
            // and batch layers are structurally off; recorded for artifact
            // uniformity (ISSUE 8/9: every bench JSON states its knobs).
            crate::faults_json(&scout_storage::FaultPlan::default()),
            crate::batch_json(&scout_storage::BatchPlan::default()),
        ));
        out.push_str("  \"datasets\": {\n");
        for (i, d) in self.datasets.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\n      \"objects\": {}, \"pages\": {}, \"result_objects\": {},\n",
                d.name, d.objects, d.pages, d.result_objects
            ));
            out.push_str("      \"kernels\": {\n");
            for (j, k) in d.kernels.iter().enumerate() {
                let comma = if j + 1 < d.kernels.len() { "," } else { "" };
                out.push_str(&format!(
                    "        \"{}\": {{ \"seed_us\": {:.2}, \"flat_us\": {:.2}, \
                     \"speedup\": {:.2} }}{}\n",
                    k.name,
                    k.seed_us,
                    k.flat_us,
                    k.speedup(),
                    comma
                ));
            }
            let comma = if i + 1 < self.datasets.len() { "," } else { "" };
            out.push_str(&format!("      }}\n    }}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str("  \"incremental\": {\n");
        for (i, d) in self.incremental.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\n      \"window_objects\": {},\n      \"sweeps\": {{\n",
                d.name, d.window_objects
            ));
            for (j, s) in d.sweeps.iter().enumerate() {
                let comma = if j + 1 < d.sweeps.len() { "," } else { "" };
                out.push_str(&format!(
                    "        \"{:.1}\": {{ \"queries\": {}, \"full_us\": {:.2}, \
                     \"incremental_us\": {:.2}, \"speedup\": {:.2}, \
                     \"incremental_builds\": {}, \"fallback_builds\": {} }}{}\n",
                    s.overlap,
                    s.queries,
                    s.full_us,
                    s.incremental_us,
                    s.speedup(),
                    s.incremental_builds,
                    s.fallback_builds,
                    comma
                ));
            }
            let comma = if i + 1 < self.incremental.len() { "," } else { "" };
            out.push_str(&format!("      }}\n    }}{comma}\n"));
        }
        out.push_str("  },\n");
        out.push_str("  \"parallel\": {\n");
        for (i, p) in self.parallel.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\n      \"result_objects\": {}, \"serial_us\": {:.2},\n      \
                 \"threads\": {{ ",
                p.name, p.result_objects, p.serial_us
            ));
            for (j, t) in p.sweep.iter().enumerate() {
                let comma = if j + 1 < p.sweep.len() { ", " } else { "" };
                out.push_str(&format!("\"{}\": {:.2}{}", t.threads, t.us, comma));
            }
            let best = p.best();
            let comma = if i + 1 < self.parallel.len() { "," } else { "" };
            out.push_str(&format!(
                " }},\n      \"best_threads\": {}, \"best_us\": {:.2}, \
                 \"best_speedup\": {:.2}\n    }}{}\n",
                best.threads,
                best.us,
                p.best_speedup(),
                comma
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"guard\": {{ \"overlap_0_9_fallbacks\": {}, \"parallel_regressions\": {} }}\n",
            self.overlap_0_9_fallbacks(),
            self.parallel_regressions()
        ));
        out.push_str("}\n");
        out
    }
}

/// Times `f` after one warmup call; returns µs/call.
///
/// Runs at least `min_iters` calls and keeps going until ~50 ms of wall
/// clock have accumulated (capped at 1000 × `min_iters`), so microsecond
/// kernels get enough calls for a stable mean.
fn time_us(min_iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: fault pages in, grow scratch capacity
    let mut calls = 0usize;
    let t0 = Instant::now();
    loop {
        f();
        calls += 1;
        if (calls >= min_iters && t0.elapsed().as_secs_f64() >= 0.05)
            || calls >= min_iters.saturating_mul(1000)
        {
            break;
        }
    }
    t0.elapsed().as_secs_f64() * 1e6 / calls as f64
}

/// Runs the four per-query kernels of one dataset.
fn dataset_kernels(name: &'static str, dataset: &Dataset, iters: usize) -> DatasetKernels {
    let objects = &dataset.objects;
    let result_ids: Vec<ObjectId> = objects.iter().map(|o| o.id).collect();
    let region = QueryRegion::from_aabb(dataset.bounds);
    let resolution = ScoutConfig::default().grid_resolution;
    let simplification = ScoutConfig::default().simplification;

    let tree = RTree::bulk_load(objects);
    let seed_tree = ReferenceRTree::bulk_load(objects);
    let mut kernels = Vec::new();

    // grid_hash: full result-graph construction over the result ids.
    let mut scratch = QueryScratch::new();
    let mut graph = ResultGraph::default();
    let flat_us = time_us(iters, || {
        graph.build_grid_hash(
            &mut scratch,
            objects,
            &result_ids,
            &region,
            resolution,
            simplification,
        );
    });
    let seed_us = time_us(iters, || {
        let (g, _) =
            ReferenceGraph::grid_hash(objects, &result_ids, &region, resolution, simplification);
        std::hint::black_box(g.vertex_count());
    });
    kernels.push(KernelTiming { name: "grid_hash", seed_us, flat_us });

    // components: labeling over the built graphs.
    let (seed_graph, _) =
        ReferenceGraph::grid_hash(objects, &result_ids, &region, resolution, simplification);
    let flat_us = time_us(iters, || {
        let n = graph.components_into(&mut scratch.components, &mut scratch.stack);
        std::hint::black_box(n);
    });
    let seed_us = time_us(iters, || {
        let (_, n) = seed_graph.components();
        std::hint::black_box(n);
    });
    kernels.push(KernelTiming { name: "components", seed_us, flat_us });

    // pages_in_region: a query-sized window in the middle of the dataset.
    let center = dataset.bounds.center();
    let extent = dataset.bounds.extent() * 0.25;
    let window = Aabb::from_center_extent(center, extent);
    let flat_us = time_us(iters, || {
        std::hint::black_box(tree.pages_in_region(&window).len());
    });
    let seed_us = time_us(iters, || {
        std::hint::black_box(seed_tree.pages_in_region(&window).len());
    });
    kernels.push(KernelTiming { name: "pages_in_region", seed_us, flat_us });

    // k_nearest_pages: a sweep of probe points, k = 16.
    let probes: Vec<Vec3> = (0..32)
        .map(|i| {
            let t = i as f64 / 31.0;
            dataset.bounds.min + (dataset.bounds.max - dataset.bounds.min) * t
        })
        .collect();
    let mut knn_scratch = KnnScratch::new();
    let mut knn_out = Vec::new();
    let flat_us = time_us(iters, || {
        for &p in &probes {
            tree.k_nearest_pages_into(p, 16, &mut knn_scratch, &mut knn_out);
            std::hint::black_box(knn_out.len());
        }
    });
    let seed_us = time_us(iters, || {
        for &p in &probes {
            std::hint::black_box(seed_tree.k_nearest_pages(p, 16).len());
        }
    });
    kernels.push(KernelTiming {
        name: "k_nearest_pages",
        seed_us: seed_us / probes.len() as f64,
        flat_us: flat_us / probes.len() as f64,
    });

    DatasetKernels {
        name,
        objects: objects.len(),
        pages: tree.layout().page_count(),
        result_objects: result_ids.len(),
        kernels,
    }
}

/// Object ids ordered along a Hilbert tour of their centroids: a
/// spatially coherent traversal, so a sliding window over it models a
/// result stream following the latent structure.
fn hilbert_tour(objects: &[SpatialObject], bounds: &Aabb) -> Vec<ObjectId> {
    const ORDER: u32 = 10; // 1024 cells per axis
    let extent = bounds.extent();
    let quantize = |p: Vec3| -> [u32; 3] {
        let mut q = [0u32; 3];
        let rel = p - bounds.min;
        for (a, slot) in q.iter_mut().enumerate() {
            let t = if extent[a] <= 0.0 { 0.0 } else { rel[a] / extent[a] };
            *slot = ((t * 1023.0).clamp(0.0, 1023.0)) as u32;
        }
        q
    };
    // Bulk-encode through the dispatched slice kernel (scalar/AVX2 agree
    // bit-for-bit, so the tour is machine-independent).
    let coords: Vec<[u32; 3]> = objects.iter().map(|o| quantize(o.centroid())).collect();
    let mut keys = Vec::new();
    hilbert_indices_3d(&coords, ORDER, &mut keys);
    let mut keyed: Vec<(u64, ObjectId)> =
        keys.into_iter().zip(objects.iter().map(|o| o.id)).collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, id)| id).collect()
}

/// Measures the full grid-hash build at forced fork-join widths against
/// the serial baseline. On machines without spare cores (or with
/// `SCOUT_THREADS=1`) the widths > 1 still execute the fork-join
/// structure — staging, fixed-order merges, run-aligned chunking — just
/// inline, so the sweep then reports the structure's overhead rather
/// than a speedup; the guard only trips if even the best point regresses
/// past 50 % (wide enough to absorb CI scheduling noise between the two
/// independently timed runs).
fn parallel_report(name: &'static str, dataset: &Dataset, iters: usize) -> ParallelReport {
    let objects = &dataset.objects;
    let result_ids: Vec<ObjectId> = objects.iter().map(|o| o.id).collect();
    let region = QueryRegion::from_aabb(dataset.bounds);
    let resolution = ScoutConfig::default().grid_resolution;
    let simplification = ScoutConfig::default().simplification;

    let mut scratch = QueryScratch::new();
    let mut graph = ResultGraph::default();
    let timed = |threads: usize, scratch: &mut QueryScratch, graph: &mut ResultGraph| {
        graph.set_build_threads(threads);
        time_us(iters, || {
            graph.build_grid_hash(
                scratch,
                objects,
                &result_ids,
                &region,
                resolution,
                simplification,
            );
        })
    };
    let serial_us = timed(1, &mut scratch, &mut graph);
    let sweep = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| ThreadTiming { threads, us: timed(threads, &mut scratch, &mut graph) })
        .collect();
    ParallelReport { name, result_objects: result_ids.len(), serial_us, sweep }
}

/// Number of timed queries per sweep repetition.
const SWEEP_QUERIES: usize = 10;
/// Untimed warmup queries per repetition (buffer growth + cache warmup).
const SWEEP_WARMUP: usize = 2;

/// Measures one overlap point: sliding windows over `tour` under the
/// fixed `region` lattice, incremental entry point vs plain full rebuild
/// on identical window sequences.
fn run_sweep(
    dataset: &Dataset,
    tour: &[ObjectId],
    overlap: f64,
    repeats: usize,
) -> (usize, OverlapSweep) {
    let simplification = ScoutConfig::default().simplification;
    let objects = &dataset.objects;

    let steps = SWEEP_WARMUP + SWEEP_QUERIES;
    // The last window must fit even at zero overlap (advance = w).
    let w = tour.len() / (steps + 2);
    let advance = (((1.0 - overlap) * w as f64).round() as usize).max(1);
    let windows: Vec<&[ObjectId]> =
        (0..steps).map(|k| &tour[k * advance..k * advance + w]).collect();
    // Viewport: the analysis region swept by this sequence (union of the
    // windows' object bounds). The lattice keeps the paper-default cell
    // *volume of one query-sized region* — a window's bounding box — so
    // the viewport's total cell count scales with how much space the
    // sequence sweeps (§4.2 prescribes resolution per query region, and
    // the paper's strategy is "use a fine resolution and work with [a]
    // sparser approximate graph").
    let mut window0 = objects[windows[0][0].index()].shape.aabb();
    for &oid in windows[0].iter() {
        window0 = window0.union(&objects[oid.index()].shape.aabb());
    }
    let mut viewport = window0;
    for win in &windows[1..] {
        for &oid in win.iter() {
            viewport = viewport.union(&objects[oid.index()].shape.aabb());
        }
    }
    let base_res = ScoutConfig::default().grid_resolution as f64;
    let scale = (viewport.volume() / window0.volume().max(1e-12)).max(1.0);
    let resolution = (base_res * scale).min(16_777_216.0) as u32;
    let region = QueryRegion::from_aabb(viewport);

    let mut scratch = QueryScratch::new();

    // Incremental vs full on identical window sequences, interleaved per
    // repetition so clock drift hits both sides equally. The incremental
    // side starts cold each repetition (the first warmup build is the
    // capture) and is timed over the steady-state windows.
    let mut inc_graph = ResultGraph::default();
    let mut full_graph = ResultGraph::default();
    let mut inc_total = 0.0f64;
    let mut full_total = 0.0f64;
    let mut incremental_builds = 0u64;
    let mut fallback_builds = 0u64;
    for _ in 0..repeats {
        inc_graph.invalidate_cache();
        for win in &windows[..SWEEP_WARMUP] {
            inc_graph.build_grid_hash_incremental(
                &mut scratch,
                objects,
                win,
                &region,
                resolution,
                simplification,
                0.5,
            );
        }
        let t0 = Instant::now();
        for win in &windows[SWEEP_WARMUP..] {
            let (_, kind) = inc_graph.build_grid_hash_incremental(
                &mut scratch,
                objects,
                win,
                &region,
                resolution,
                simplification,
                0.5,
            );
            match kind {
                GraphBuildKind::Incremental => incremental_builds += 1,
                GraphBuildKind::Full(_) => fallback_builds += 1,
            }
        }
        inc_total += t0.elapsed().as_secs_f64();

        for win in &windows[..SWEEP_WARMUP] {
            full_graph.build_grid_hash(
                &mut scratch,
                objects,
                win,
                &region,
                resolution,
                simplification,
            );
        }
        let t0 = Instant::now();
        for win in &windows[SWEEP_WARMUP..] {
            full_graph.build_grid_hash(
                &mut scratch,
                objects,
                win,
                &region,
                resolution,
                simplification,
            );
        }
        full_total += t0.elapsed().as_secs_f64();
    }

    let calls = (repeats * SWEEP_QUERIES) as f64;
    (
        w,
        OverlapSweep {
            overlap,
            queries: SWEEP_QUERIES,
            full_us: full_total * 1e6 / calls,
            incremental_us: inc_total * 1e6 / calls,
            incremental_builds,
            fallback_builds,
        },
    )
}

/// The overlap points of the incremental sweep (descending).
pub const SWEEP_OVERLAPS: [f64; 4] = [0.9, 0.7, 0.3, 0.0];

fn incremental_report(name: &'static str, dataset: &Dataset, repeats: usize) -> IncrementalReport {
    let tour = hilbert_tour(&dataset.objects, &dataset.bounds);
    let mut window_objects = 0;
    let mut sweeps = Vec::new();
    for overlap in SWEEP_OVERLAPS {
        let (w, sweep) = run_sweep(dataset, &tour, overlap, repeats);
        window_objects = w;
        sweeps.push(sweep);
    }
    IncrementalReport { name, window_objects, sweeps }
}

/// Runs the hot-path kernels and the incremental sweeps on all three
/// synthetic datasets.
///
/// `iters` is the timed iteration count per kernel (the bin uses enough
/// for stable numbers; the bench smoke target uses a couple). The sweep
/// repetition count scales with it.
pub fn run(iters: usize) -> HotpathReport {
    let iters = iters.max(1);
    let seed = crate::seed();
    let neuron = generate_neurons(&NeuronParams::with_target_objects(100_000), seed);
    let lung = generate_lung(&LungParams { generations: 8, ..Default::default() }, seed);
    let roads = generate_roads(&RoadParams { grid_n: 96, ..Default::default() }, seed);

    let datasets = vec![
        dataset_kernels("neuron", &neuron, iters),
        dataset_kernels("lung", &lung, iters),
        dataset_kernels("roads", &roads, iters),
    ];
    let repeats = iters.clamp(1, 8);
    let incremental = vec![
        incremental_report("neuron", &neuron, repeats),
        incremental_report("lung", &lung, repeats),
        incremental_report("roads", &roads, repeats),
    ];
    let parallel = vec![
        parallel_report("neuron", &neuron, iters),
        parallel_report("lung", &lung, iters),
        parallel_report("roads", &roads, iters),
    ];

    HotpathReport {
        iters,
        grid_resolution: ScoutConfig::default().grid_resolution,
        tier: scout_geometry::cpu_tier().name(),
        max_parallelism: default_parallelism(),
        datasets,
        incremental,
        parallel,
    }
}
