//! # scout-bench
//!
//! Shared plumbing for the per-figure benchmark harnesses: standard
//! datasets, the prefetcher roster, and evaluation helpers. Every
//! `[[bench]]` target in this crate regenerates one table/figure of the
//! paper; see DESIGN.md §4 for the experiment index.
//!
//! Scale control: harnesses read `SCOUT_BENCH_SCALE` (float, default 1.0)
//! to shrink/grow datasets and sequence counts, and `SCOUT_BENCH_SEED`
//! (u64, default 42) for reproducible randomness.

pub mod adaptive;
pub mod batch;
pub mod faults;
pub mod hotpath;
pub mod obs;
pub mod scale;

use scout_storage::{BatchPlan, FaultPlan};

use scout_baselines::{Ewma, HilbertPrefetch, MarkovPrefetcher, Polynomial, StraightLine};
use scout_core::{Scout, ScoutOpt};
use scout_predict::HybridPrefetcher;
use scout_sim::{
    evaluate, region_lists, AggregateMetrics, ExecutorConfig, NoPrefetch, Prefetcher, TestBed,
};
use scout_synth::{
    generate_arterial, generate_lung, generate_neurons, generate_roads, generate_sequences,
    ArterialParams, Dataset, LungParams, NeuronParams, RoadParams, SequenceParams,
};

/// Reads the global scale factor from `SCOUT_BENCH_SCALE` (scales the
/// number of sequences per experiment; default 1.0).
pub fn scale() -> f64 {
    std::env::var("SCOUT_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Reads the dataset scale factor from `SCOUT_BENCH_DATASET_SCALE`.
///
/// Scaling the dataset changes its density and therefore the page-to-query
/// size ratio — absolute hit rates shift, though orderings persist. Keep
/// this at 1.0 for paper-comparable numbers; lower it only for quick
/// smoke runs.
pub fn dataset_scale() -> f64 {
    std::env::var("SCOUT_BENCH_DATASET_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Reads the global seed from `SCOUT_BENCH_SEED`.
pub fn seed() -> u64 {
    std::env::var("SCOUT_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Schema version of the shared `meta` block in every BENCH_*.json
/// artifact. Bump when the block's fields change.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// The shared `meta` block every BENCH_*.json artifact opens with
/// (ISSUE 10): schema version, bench name, the scale/seed knobs, and the
/// thread environment — enough to tell two artifacts' provenance apart
/// without diffing their `config` blocks.
pub fn meta_json(bench: &str) -> String {
    format!(
        "  \"meta\": {{ \"schema_version\": {}, \"bench\": \"{}\", \"scale\": {}, \
         \"dataset_scale\": {}, \"seed\": {}, \"workers\": {}, \"threads_env\": {} }},\n",
        BENCH_SCHEMA_VERSION,
        bench,
        scale(),
        dataset_scale(),
        seed(),
        scout_sim::default_parallelism(),
        match std::env::var("SCOUT_THREADS") {
            Ok(v) => format!("{v:?}"),
            Err(_) => "null".to_string(),
        },
    )
}

/// JSON fragment recording a run's fault-injection knobs. Every bench
/// artifact's `config` block embeds this (ISSUE 8), so a reader can tell
/// a clean measurement from a chaos run — and reproduce the chaos run's
/// exact fault schedule — from the JSON alone.
pub fn faults_json(plan: &FaultPlan) -> String {
    match &plan.inject {
        None => "\"faults\": { \"enabled\": false }".to_string(),
        Some(c) => format!(
            "\"faults\": {{ \"enabled\": true, \"seed\": {}, \"transient_rate\": {}, \
             \"corrupt_rate\": {}, \"stuck_rate\": {}, \"slow_rate\": {}, \
             \"slow_multiplier\": {}, \"max_attempts\": {}, \"backoff_base_us\": {}, \
             \"backoff_multiplier\": {}, \"jitter\": {}, \"deadline_us\": {}, \
             \"breaker_alpha\": {}, \"breaker_threshold\": {}, \"breaker_cooldown\": {} }}",
            c.seed,
            c.transient_rate,
            c.corrupt_rate,
            c.stuck_rate,
            c.slow_rate,
            c.slow_multiplier,
            plan.retry.max_attempts,
            plan.retry.backoff_base_us,
            plan.retry.backoff_multiplier,
            plan.retry.jitter,
            plan.retry.deadline_us,
            plan.breaker.alpha,
            plan.breaker.trip_threshold,
            plan.breaker.cooldown_queries,
        ),
    }
}

/// JSON fragment recording a run's batched-I/O submission knobs
/// (ISSUE 9). Every bench artifact's `config` block embeds this next to
/// the fault fragment, so artifacts state whether cross-session
/// coalescing and elevator submission were in play.
pub fn batch_json(plan: &BatchPlan) -> String {
    format!("\"batch\": {{ \"enabled\": {} }}", plan.enabled)
}

/// Number of sequences per experiment, scaled (paper: 30 for Figure 11/12,
/// 50 for the sensitivity analysis).
pub fn sequences(paper_count: usize) -> usize {
    ((paper_count as f64 * scale()).round() as usize).clamp(3, paper_count * 4)
}

/// The default neuron dataset used by the main experiments.
pub fn neuron_dataset() -> Dataset {
    neuron_dataset_with_objects((1_300_000.0 * dataset_scale()) as usize)
}

/// A neuron dataset targeting approximately `objects` objects.
pub fn neuron_dataset_with_objects(objects: usize) -> Dataset {
    generate_neurons(&NeuronParams::with_target_objects(objects.max(2_000)), seed())
}

/// The §8.4 arterial-tree dataset, scaled.
pub fn arterial_dataset() -> Dataset {
    let mut p = ArterialParams::default();
    if dataset_scale() < 0.5 {
        p.generations = 6;
        p.root_branch_steps = 150;
    }
    generate_arterial(&p, seed() ^ 0xA7)
}

/// The §8.4 lung-airway dataset, scaled.
pub fn lung_dataset() -> Dataset {
    let mut p = LungParams::default();
    if dataset_scale() < 0.5 {
        p.generations = 6;
    }
    generate_lung(&p, seed() ^ 0x11)
}

/// The §8.4 road-network dataset, scaled.
pub fn road_dataset() -> Dataset {
    let mut p = RoadParams::default();
    if dataset_scale() < 0.5 {
        p.grid_n = 32;
    }
    generate_roads(&p, seed() ^ 0x30)
}

/// The comparison roster of Figure 11/12: the best related approaches
/// (§7.3: "Straight Line Extrapolation approach, EWMA 0.3 and Hilbert
/// prefetching") plus SCOUT.
pub fn figure11_roster() -> Vec<Box<dyn Prefetcher>> {
    vec![
        Box::new(Ewma::paper_best()),
        Box::new(StraightLine::new()),
        Box::new(HilbertPrefetch::default()),
        Box::new(Scout::with_defaults()),
    ]
}

/// The adaptive-prediction roster (ISSUE 5): the no-prefetching floor,
/// plain SCOUT, the pure history baseline, and the hybrid.
pub fn adaptive_roster() -> Vec<Box<dyn Prefetcher>> {
    vec![
        Box::new(NoPrefetch),
        Box::new(Scout::with_defaults()),
        Box::new(MarkovPrefetcher::with_defaults()),
        Box::new(HybridPrefetcher::with_defaults()),
    ]
}

/// The Figure 3 roster: state-of-the-art trajectory extrapolation only.
pub fn figure3_roster() -> Vec<Box<dyn Prefetcher>> {
    vec![
        Box::new(Ewma::paper_best()),
        Box::new(StraightLine::new()),
        Box::new(Polynomial::new(2)),
        Box::new(Polynomial::new(3)),
    ]
}

/// Runs one roster over a workload on a test bed; returns metrics per
/// prefetcher. SCOUT-OPT (if included by the caller) must run on the FLAT
/// context; everything else runs on the R-tree context (§7.1).
pub fn run_roster(
    bed: &TestBed,
    roster: &mut [Box<dyn Prefetcher>],
    params: &SequenceParams,
    n_sequences: usize,
    window_ratio: f64,
    seq_seed: u64,
) -> Vec<AggregateMetrics> {
    let sequences = generate_sequences(&bed.dataset, params, n_sequences, seq_seed);
    let regions = region_lists(&sequences);
    let config = ExecutorConfig { window_ratio, ..ExecutorConfig::default() };
    roster
        .iter_mut()
        .map(|p| {
            let is_opt = p.name().contains("OPT");
            let ctx = if is_opt { bed.ctx_flat() } else { bed.ctx_rtree() };
            evaluate(&ctx, p.as_mut(), &regions, &config)
        })
        .collect()
}

/// Convenience: a fresh SCOUT-OPT boxed as a prefetcher.
pub fn scout_opt() -> Box<dyn Prefetcher> {
    Box::new(ScoutOpt::with_defaults())
}

/// Convenience: a fresh no-prefetch baseline.
pub fn no_prefetch() -> Box<dyn Prefetcher> {
    Box::new(NoPrefetch)
}
