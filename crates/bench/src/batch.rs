//! The `fig_batch` sweep: batched I/O submission on/off across crew
//! widths (ISSUE 9).
//!
//! The headline workload is the cross-session coalescing case SCOUT's
//! shared-structure setting produces naturally: many analysts stepping
//! through the *same* latent structure issue near-identical demand reads
//! every round, and §7.1's serve path never populates the cache, so the
//! unbatched engine re-reads the identical pages once per session per
//! round. The demand lane single-flights those duplicates — one physical
//! read, K−1 coalesced waiters — which is where the windows-per-second
//! headline comes from.
//!
//! Three arms, mirrored in `BENCH_batch.json`:
//!
//! * **throughput** — 64 sessions replaying one shared stream with no
//!   prefetching, batch on/off × widths. `windows_per_sec` is windows per
//!   simulated *device*-second (`disk_busy_us`): the fleet shares one
//!   disk, so the device-busy time is what bounds sustained throughput,
//!   and it is the quantity single-flighting shrinks — K duplicate demand
//!   reads collapse to one physical read. The `coalesced_speedup`
//!   headline is the width-1 on/off ratio (acceptance: ≥ 1.5×).
//! * **parity** — under the eviction-free guard of DESIGN.md §5, batched
//!   runs must reproduce the *unbatched* round-robin oracle's pages-hit
//!   accounting exactly at every width; mismatches feed the
//!   `batch_pages_hit_mismatches` CI guard (must stay 0).
//! * **identity** — batched width-1 reruns are byte-identical, batched
//!   round-robin ≡ batched width-1 work stealing, and *disabled* batching
//!   stays byte-identical to the pre-batching engine; failures feed the
//!   `batch_w1_regressions` CI guard (must stay 0).

use crate::{scale, seed};
use scout_core::Scout;
use scout_geometry::QueryRegion;
use scout_index::SpatialIndex;
use scout_sim::{
    AdmissionControl, ExecutorConfig, MultiSessionConfig, MultiSessionExecutor, MultiSessionReport,
    NoPrefetch, Schedule, Session, TestBed,
};
use scout_storage::BatchPlan;
use scout_synth::{generate_sequences, SequenceParams};
use std::time::Instant;

/// Sessions in the shared-structure throughput fleet.
const FLEET: usize = 64;

/// One (width × batching) throughput measurement.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Crew width (work-stealing).
    pub workers: usize,
    /// Whether the demand/window batch lanes were enabled.
    pub batched: bool,
    /// Wall-clock time of the fleet run, ms (host-dependent; recorded for
    /// transparency, never part of a guard).
    pub wall_ms: f64,
    /// Simulated time the shared disk spent busy, ms.
    pub disk_busy_ms: f64,
    /// Prefetch windows (= queries) completed per simulated
    /// device-second — the throughput the shared disk sustains.
    pub windows_per_sec: f64,
    /// Result pages requested across the fleet.
    pub pages_total: u64,
    /// Unique pages physically read by the batch lanes (0 when off).
    pub unique_pages: u64,
    /// Duplicate requests coalesced behind an in-flight read (0 when off).
    pub coalesced: u64,
}

/// One width's parity check: batched totals vs the unbatched round-robin
/// oracle under the eviction-free guard.
#[derive(Debug, Clone)]
pub struct ParityPoint {
    /// Schedule label (`"rr"` or `"ws"`).
    pub schedule: &'static str,
    /// Crew width (1 for round-robin).
    pub workers: usize,
    /// Pages hit by the batched run.
    pub pages_hit: u64,
    /// Pages hit by the unbatched round-robin oracle.
    pub oracle_pages_hit: u64,
    /// Evictions observed (must be 0 for the parity contract to apply).
    pub evictions: u64,
}

impl ParityPoint {
    /// True when this run reproduced the oracle's accounting exactly.
    pub fn matches(&self) -> bool {
        self.pages_hit == self.oracle_pages_hit && self.evictions == 0
    }
}

/// The width-1 determinism checks (all must hold).
#[derive(Debug, Clone)]
pub struct IdentityChecks {
    /// Two batched round-robin runs render byte-identically.
    pub batched_rerun_identical: bool,
    /// Batched width-1 work stealing renders byte-identically to batched
    /// round-robin.
    pub batched_ws1_matches_rr: bool,
    /// With batching *disabled*, width-1 work stealing still renders
    /// byte-identically to round-robin — the pre-batching contract.
    pub unbatched_ws1_matches_rr: bool,
}

/// A full `fig_batch` sweep.
#[derive(Debug, Clone)]
pub struct BatchBenchReport {
    /// Scale factor the sweep ran at.
    pub scale: f64,
    /// Sessions in the throughput fleet.
    pub sessions: usize,
    /// Queries per session.
    pub queries_per_session: usize,
    /// One entry per (width × batching), sweep order.
    pub throughput: Vec<ThroughputPoint>,
    /// One parity check per schedule/width.
    pub parity: Vec<ParityPoint>,
    /// The width-1 byte-identity checks.
    pub identity: IdentityChecks,
}

impl BatchBenchReport {
    /// Width-1 windows-per-second, batch on over batch off — the
    /// coalescing headline. Acceptance: ≥ 1.5 on the shared-structure
    /// fleet.
    pub fn coalesced_speedup(&self) -> f64 {
        let at = |batched: bool| {
            self.throughput
                .iter()
                .find(|p| p.workers == 1 && p.batched == batched)
                .map_or(0.0, |p| p.windows_per_sec)
        };
        let off = at(false);
        if off > 0.0 {
            at(true) / off
        } else {
            0.0
        }
    }

    /// Schedules/widths whose batched pages-hit accounting diverged from
    /// the unbatched oracle — the primary CI guard; must stay 0.
    pub fn batch_pages_hit_mismatches(&self) -> u64 {
        self.parity.iter().filter(|p| !p.matches()).count() as u64
    }

    /// Failed width-1 byte-identity checks — the second CI guard; must
    /// stay 0.
    pub fn batch_w1_regressions(&self) -> u64 {
        u64::from(!self.identity.batched_rerun_identical)
            + u64::from(!self.identity.batched_ws1_matches_rr)
            + u64::from(!self.identity.unbatched_ws1_matches_rr)
    }

    /// Serializes the report as pretty-printed JSON (no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&crate::meta_json("batch"));
        out.push_str(&format!(
            "  \"config\": {{ \"scale\": {:.2}, \"sessions\": {}, \"queries_per_session\": {}, \
             \"schedule\": \"work-stealing\", \"max_parallelism\": {}, \"seed\": {}, {}, {} }},\n",
            self.scale,
            self.sessions,
            self.queries_per_session,
            scout_sim::default_parallelism(),
            seed(),
            crate::faults_json(&scout_storage::FaultPlan::default()),
            crate::batch_json(&BatchPlan { enabled: true }),
        ));
        out.push_str("  \"throughput\": [\n");
        for (i, p) in self.throughput.iter().enumerate() {
            let comma = if i + 1 < self.throughput.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"workers\": {}, \"batched\": {}, \"wall_ms\": {:.1}, \
                 \"disk_busy_ms\": {:.1}, \"windows_per_sec\": {:.0}, \"pages_total\": {}, \
                 \"unique_pages\": {}, \"coalesced\": {} }}{}\n",
                p.workers,
                p.batched,
                p.wall_ms,
                p.disk_busy_ms,
                p.windows_per_sec,
                p.pages_total,
                p.unique_pages,
                p.coalesced,
                comma
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"parity\": [\n");
        for (i, p) in self.parity.iter().enumerate() {
            let comma = if i + 1 < self.parity.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"schedule\": \"{}\", \"workers\": {}, \"pages_hit\": {}, \
                 \"oracle_pages_hit\": {}, \"evictions\": {} }}{}\n",
                p.schedule, p.workers, p.pages_hit, p.oracle_pages_hit, p.evictions, comma
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"identity\": {{ \"batched_rerun_identical\": {}, \"batched_ws1_matches_rr\": {}, \
             \"unbatched_ws1_matches_rr\": {} }},\n",
            self.identity.batched_rerun_identical,
            self.identity.batched_ws1_matches_rr,
            self.identity.unbatched_ws1_matches_rr
        ));
        out.push_str(&format!(
            "  \"guard\": {{\n    \"coalesced_speedup\": {:.2},\n    \
             \"batch_pages_hit_mismatches\": {},\n    \"batch_w1_regressions\": {}\n  }}\n}}\n",
            self.coalesced_speedup(),
            self.batch_pages_hit_mismatches(),
            self.batch_w1_regressions()
        ));
        out
    }
}

fn engine(
    exec: ExecutorConfig,
    shards: usize,
    schedule: Schedule,
    batched: bool,
) -> MultiSessionExecutor {
    MultiSessionExecutor::new(MultiSessionConfig {
        exec,
        shards,
        schedule,
        admission: AdmissionControl::unlimited(),
        batch: BatchPlan { enabled: batched },
    })
}

fn run_timed(
    engine: &MultiSessionExecutor,
    bed: &TestBed,
    sessions: Vec<Session>,
) -> (MultiSessionReport, f64) {
    let ctx = bed.ctx_rtree();
    let t0 = Instant::now();
    let report = engine.run(&ctx, sessions);
    (report, t0.elapsed().as_secs_f64() * 1_000.0)
}

/// Windows per simulated device-second: the fleet shares one disk, so its
/// busy time bounds sustained throughput. Single-flighting shrinks exactly
/// this denominator (K duplicate reads → one physical read).
fn windows_per_sec(report: &MultiSessionReport) -> f64 {
    let windows: usize = report.sessions.iter().map(|s| s.queries).sum();
    if report.disk_busy_us > 0.0 {
        windows as f64 / (report.disk_busy_us / 1_000_000.0)
    } else {
        0.0
    }
}

/// Runs the sweep. Deterministic in `seed` for all simulated quantities;
/// only wall-clock fields vary per host.
pub fn run(scale_factor: f64, seed: u64) -> BatchBenchReport {
    // One object per page plus a fat query volume makes result sets
    // maximally page-rich: every round each session demands a couple of
    // hundred pages, all identical across the fleet — the duplicate-heavy
    // regime the demand lane single-flights.
    let dataset = crate::neuron_dataset_with_objects(20_000);
    let bed = TestBed::with_page_capacity(dataset, 1);
    let queries_per_session = ((24.0 * scale_factor).round() as usize).clamp(6, 48);
    let params = SequenceParams {
        length: queries_per_session,
        volume: 640_000.0,
        ..SequenceParams::sensitivity_default()
    };

    // --- throughput: FLEET sessions on ONE shared stream, no prefetching.
    // Serve never inserts (§7.1), so without batching every session
    // re-reads the full result set from disk every round — the duplicate-
    // heavy regime the demand lane coalesces.
    let shared_stream: Vec<QueryRegion> =
        generate_sequences(&bed.dataset, &params, 1, seed).remove(0).regions;
    let fleet = |n: usize| -> Vec<Session> {
        (0..n).map(|id| Session::new(id, Box::new(NoPrefetch), shared_stream.clone())).collect()
    };
    let exec = ExecutorConfig::default();
    let mut throughput = Vec::new();
    for &workers in &[1usize, 2, 4] {
        for batched in [false, true] {
            let engine = engine(exec, 16, Schedule::WorkStealing { workers }, batched);
            let (report, wall_ms) = run_timed(&engine, &bed, fleet(FLEET));
            let batch = report.batch;
            throughput.push(ThroughputPoint {
                workers,
                batched,
                wall_ms,
                disk_busy_ms: report.disk_busy_us / 1_000.0,
                windows_per_sec: windows_per_sec(&report),
                pages_total: report.total_pages(),
                unique_pages: batch.map_or(0, |b| b.unique_pages),
                coalesced: batch.map_or(0, |b| b.coalesced),
            });
        }
    }

    // --- parity: distinct SCOUT streams under the eviction-free guard
    // (single shard so per-shard capacity equals the page count, exactly
    // like the fig_scale guard). The huge window ratio makes the budget
    // structurally non-binding — the parity precondition: the batched
    // window lane costs its budget with head-stationary estimates while
    // the unbatched loop pays evolving actuals, so a binding budget
    // legitimately stages different tails (DESIGN.md §12). With ample
    // windows both modes stage every planned page and batched runs at
    // every width must hit the unbatched round-robin oracle's totals.
    let ample = ExecutorConfig {
        window_ratio: 100.0,
        cache_pages: bed.rtree.layout().page_count(),
        ..Default::default()
    };
    let guard_params = SequenceParams { length: 8, ..SequenceParams::sensitivity_default() };
    let guard_streams: Vec<Vec<QueryRegion>> =
        generate_sequences(&bed.dataset, &guard_params, 8, seed ^ 0xB47C)
            .into_iter()
            .map(|s| s.regions)
            .collect();
    let scouts = |streams: &[Vec<QueryRegion>]| -> Vec<Session> {
        streams
            .iter()
            .enumerate()
            .map(|(id, s)| {
                Session::new(id, Box::new(Scout::with_seed(0xBEEF + id as u64)), s.clone())
            })
            .collect()
    };
    let (oracle, _) =
        run_timed(&engine(ample, 1, Schedule::RoundRobin, false), &bed, scouts(&guard_streams));
    let mut parity = Vec::new();
    let (rr_batched, _) =
        run_timed(&engine(ample, 1, Schedule::RoundRobin, true), &bed, scouts(&guard_streams));
    parity.push(ParityPoint {
        schedule: "rr",
        workers: 1,
        pages_hit: rr_batched.total_pages_hit(),
        oracle_pages_hit: oracle.total_pages_hit(),
        evictions: rr_batched.cache.evictions.max(oracle.cache.evictions),
    });
    for &workers in &[1usize, 2, 4] {
        let (ws, _) = run_timed(
            &engine(ample, 1, Schedule::WorkStealing { workers }, true),
            &bed,
            scouts(&guard_streams),
        );
        parity.push(ParityPoint {
            schedule: "ws",
            workers,
            pages_hit: ws.total_pages_hit(),
            oracle_pages_hit: oracle.total_pages_hit(),
            evictions: ws.cache.evictions.max(oracle.cache.evictions),
        });
    }

    // --- identity: width-1 byte-for-byte determinism, on and off.
    let render = |schedule: Schedule, batched: bool| {
        run_timed(&engine(ample, 1, schedule, batched), &bed, scouts(&guard_streams)).0.render()
    };
    let rr_on_a = render(Schedule::RoundRobin, true);
    let rr_on_b = render(Schedule::RoundRobin, true);
    let ws1_on = render(Schedule::WorkStealing { workers: 1 }, true);
    let rr_off = render(Schedule::RoundRobin, false);
    let ws1_off = render(Schedule::WorkStealing { workers: 1 }, false);
    let identity = IdentityChecks {
        batched_rerun_identical: rr_on_a == rr_on_b,
        batched_ws1_matches_rr: rr_on_a == ws1_on,
        unbatched_ws1_matches_rr: rr_off == ws1_off,
    };

    BatchBenchReport {
        scale: scale_factor,
        sessions: FLEET,
        queries_per_session,
        throughput,
        parity,
        identity,
    }
}

/// Entry point shared by the bin and the bench target: runs at the
/// `SCOUT_BENCH_SCALE` scale and returns (report, json).
pub fn run_default() -> (BatchBenchReport, String) {
    let report = run(scale(), seed());
    let json = report.to_json();
    (report, json)
}
