//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use scout_geometry::aabb::Aabb;
use scout_geometry::dispatch::CpuTier;
use scout_geometry::grid::UniformGrid;
use scout_geometry::hilbert::{hilbert_coords_3d, hilbert_index_3d, hilbert_indices_3d_with};
use scout_geometry::intersect::{
    clip_segment_to_aabb, segment_aabb_distance, segment_intersects_aabb,
};
use scout_geometry::morton::{morton_coords_3d, morton_index_3d, morton_indices_3d_with};
use scout_geometry::shapes::Segment;
use scout_geometry::soa::AabbSoA;
use scout_geometry::vec3::Vec3;

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_aabb(range: f64) -> impl Strategy<Value = Aabb> {
    (arb_vec3(range), arb_vec3(range)).prop_map(|(a, b)| Aabb::from_corners(a, b))
}

proptest! {
    #[test]
    fn union_contains_both(a in arb_aabb(100.0), b in arb_aabb(100.0)) {
        let u = a.union(&b);
        prop_assert!(u.contains_aabb(&a));
        prop_assert!(u.contains_aabb(&b));
    }

    #[test]
    fn intersection_is_commutative_and_contained(a in arb_aabb(100.0), b in arb_aabb(100.0)) {
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        prop_assert_eq!(i1, i2);
        prop_assert!(a.contains_aabb(&i1));
        prop_assert!(b.contains_aabb(&i1));
    }

    #[test]
    fn contains_implies_intersects(a in arb_aabb(100.0), b in arb_aabb(100.0)) {
        if a.contains_aabb(&b) && !b.is_empty() {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn intersection_volume_bounded(a in arb_aabb(50.0), b in arb_aabb(50.0)) {
        let i = a.intersection(&b);
        prop_assert!(i.volume() <= a.volume() + 1e-9);
        prop_assert!(i.volume() <= b.volume() + 1e-9);
    }

    #[test]
    fn closest_point_is_inside(a in arb_aabb(100.0), p in arb_vec3(200.0)) {
        if !a.is_empty() {
            prop_assert!(a.contains_point(a.closest_point(p)));
        }
    }

    #[test]
    fn clip_segment_endpoints_inside_box(
        a in arb_vec3(50.0), b in arb_vec3(50.0), bx in arb_aabb(30.0)
    ) {
        let seg = Segment::new(a, b);
        if let Some((t0, t1)) = clip_segment_to_aabb(&seg, &bx) {
            prop_assert!((0.0..=1.0).contains(&t0));
            prop_assert!((0.0..=1.0).contains(&t1));
            prop_assert!(t0 <= t1);
            // Clipped points lie (approximately) inside the box.
            let eps = 1e-6 * (1.0 + bx.extent().max_component());
            let inside = |p: Vec3| {
                p.x >= bx.min.x - eps && p.x <= bx.max.x + eps &&
                p.y >= bx.min.y - eps && p.y <= bx.max.y + eps &&
                p.z >= bx.min.z - eps && p.z <= bx.max.z + eps
            };
            prop_assert!(inside(seg.at(t0)));
            prop_assert!(inside(seg.at(t1)));
        }
    }

    #[test]
    fn segment_distance_zero_iff_intersects(
        a in arb_vec3(20.0), b in arb_vec3(20.0), bx in arb_aabb(15.0)
    ) {
        let seg = Segment::new(a, b);
        let d = segment_aabb_distance(&seg, &bx);
        if segment_intersects_aabb(&seg, &bx) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn segment_distance_lower_bounds_endpoint_distance(
        a in arb_vec3(20.0), b in arb_vec3(20.0), bx in arb_aabb(15.0)
    ) {
        let seg = Segment::new(a, b);
        let d = segment_aabb_distance(&seg, &bx);
        let da = bx.distance_sq_to_point(a).sqrt();
        let db = bx.distance_sq_to_point(b).sqrt();
        prop_assert!(d <= da.min(db) + 1e-6);
    }

    #[test]
    fn hilbert_round_trip(x in 0u32..32, y in 0u32..32, z in 0u32..32) {
        let idx = hilbert_index_3d([x, y, z], 5);
        prop_assert_eq!(hilbert_coords_3d(idx, 5), [x, y, z]);
    }

    #[test]
    fn hilbert_is_injective(
        a in (0u32..16, 0u32..16, 0u32..16),
        b in (0u32..16, 0u32..16, 0u32..16),
    ) {
        let ia = hilbert_index_3d([a.0, a.1, a.2], 4);
        let ib = hilbert_index_3d([b.0, b.1, b.2], 4);
        prop_assert_eq!(ia == ib, a == b);
    }

    #[test]
    fn morton_round_trip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
        prop_assert_eq!(morton_coords_3d(morton_index_3d([x, y, z])), [x, y, z]);
    }

    #[test]
    fn grid_cell_of_is_consistent_with_cell_aabb(
        p in arb_vec3(10.0),
        dims in (1u32..8, 1u32..8, 1u32..8),
    ) {
        let bounds = Aabb::new(Vec3::splat(-10.0), Vec3::splat(10.0));
        let g = UniformGrid::new(bounds, [dims.0, dims.1, dims.2]);
        let c = g.coords_of(p);
        let cell_box = g.cell_aabb(c);
        // The cell box (slightly expanded for FP slack) contains the point.
        prop_assert!(cell_box.expanded(1e-9).contains_point(p.clamp(bounds.min, bounds.max)));
    }

    #[test]
    fn grid_segment_traversal_covers_interior_crossings(
        // Endpoints snapped onto an integer sub-lattice so a large share
        // of the generated segments pass *exactly through* cell corners
        // and edges — the tie cases where the DDA used to stop early.
        ax in -8i32..8, ay in -8i32..8, az in -8i32..8,
        bx in -8i32..8, by in -8i32..8, bz in -8i32..8,
        dims in 1u32..9,
    ) {
        let bounds = Aabb::new(Vec3::splat(-8.0), Vec3::splat(8.0));
        let g = UniformGrid::new(bounds, [dims; 3]);
        let seg = Segment::new(
            Vec3::new(ax as f64, ay as f64, az as f64),
            Vec3::new(bx as f64, by as f64, bz as f64),
        );
        let mut cells = Vec::new();
        g.cells_for_segment(&seg, &mut cells);
        prop_assert_eq!(*cells.first().unwrap(), g.cell_of(seg.a));
        prop_assert_eq!(*cells.last().unwrap(), g.cell_of(seg.b));
        // Brute force over every cell: a cell whose *interior* the segment
        // crosses with positive length must be reported. The required set
        // clips against the cell box shrunk by eps: a segment riding
        // exactly along a shared face or edge touches the closed boxes on
        // both sides, but the floor convention assigns it to one cell only
        // (corner/edge touches are optional — the DDA legitimately picks
        // one route through a corner tie).
        let eps = 1e-9;
        for z in 0..dims {
            for y in 0..dims {
                for x in 0..dims {
                    let id = g.cell_id([x, y, z]);
                    let cell_box = g.cell_aabb([x, y, z]);
                    let interior = Aabb::new(
                        cell_box.min + Vec3::splat(eps),
                        cell_box.max - Vec3::splat(eps),
                    );
                    if let Some((t0, t1)) = clip_segment_to_aabb(&seg, &interior) {
                        if t1 - t0 > 1e-7 {
                            prop_assert!(
                                cells.contains(&id),
                                "cell {:?} crossed (t {t0}..{t1}) but not reported; got {:?}",
                                [x, y, z],
                                cells.iter().map(|&c| g.coords_from_id(c)).collect::<Vec<_>>()
                            );
                        }
                        // Every reported cell must at least touch the segment.
                    } else {
                        prop_assert!(
                            !cells.contains(&id) || segment_aabb_distance(&seg, &cell_box) < eps,
                            "cell {:?} reported but segment misses it",
                            [x, y, z]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn grid_segment_traversal_covers_endpoints(
        a in arb_vec3(9.0), b in arb_vec3(9.0),
        dims in 1u32..12,
    ) {
        let bounds = Aabb::new(Vec3::splat(-10.0), Vec3::splat(10.0));
        let g = UniformGrid::new(bounds, [dims; 3]);
        let mut cells = Vec::new();
        g.cells_for_segment(&Segment::new(a, b), &mut cells);
        prop_assert!(cells.contains(&g.cell_of(a)));
        prop_assert!(cells.contains(&g.cell_of(b)));
        // Consecutive traversed cells are face-adjacent.
        for w in cells.windows(2) {
            let ca = g.coords_from_id(w[0]);
            let cb = g.coords_from_id(w[1]);
            let dist: u32 = ca.iter().zip(cb.iter()).map(|(&p, &q)| p.abs_diff(q)).sum();
            prop_assert!(dist <= 1, "non-adjacent cells {ca:?} -> {cb:?}");
        }
    }

    // Dispatch-tier determinism: every compiled tier of every slice kernel
    // must agree bit-for-bit with the per-element scalar API. The tier is
    // a pure performance choice (DESIGN.md §9).

    #[test]
    fn morton_slice_tiers_match_per_element(
        raw in proptest::collection::vec(
            (0u32..(1 << 21), 0u32..(1 << 21), 0u32..(1 << 21)), 0..300),
    ) {
        let coords: Vec<[u32; 3]> = raw.iter().map(|&(x, y, z)| [x, y, z]).collect();
        let mut scalar = Vec::new();
        let mut wide = Vec::new();
        morton_indices_3d_with(CpuTier::Scalar, &coords, &mut scalar);
        morton_indices_3d_with(CpuTier::Avx2, &coords, &mut wide);
        let reference: Vec<u64> = coords.iter().map(|&c| morton_index_3d(c)).collect();
        prop_assert_eq!(&scalar, &reference);
        prop_assert_eq!(&wide, &reference);
    }

    #[test]
    fn hilbert_slice_tiers_match_per_element(
        order in 1u32..11,
        raw in proptest::collection::vec((0u32..1024, 0u32..1024, 0u32..1024), 0..200),
    ) {
        let mask = (1u32 << order) - 1;
        let coords: Vec<[u32; 3]> =
            raw.iter().map(|&(x, y, z)| [x & mask, y & mask, z & mask]).collect();
        let mut scalar = Vec::new();
        let mut wide = Vec::new();
        hilbert_indices_3d_with(CpuTier::Scalar, &coords, order, &mut scalar);
        hilbert_indices_3d_with(CpuTier::Avx2, &coords, order, &mut wide);
        let reference: Vec<u64> =
            coords.iter().map(|&c| hilbert_index_3d(c, order)).collect();
        prop_assert_eq!(&scalar, &reference);
        prop_assert_eq!(&wide, &reference);
    }

    #[test]
    fn soa_overlap_tiers_match_aabb_intersects(
        raw in proptest::collection::vec(
            (arb_vec3(8.0), arb_vec3(8.0)), 0..200),
        qa in arb_vec3(8.0), qb in arb_vec3(8.0),
    ) {
        let boxes: Vec<Aabb> =
            raw.iter().map(|&(p, q)| Aabb::from_corners(p, q)).collect();
        let query = Aabb::from_corners(qa, qb);
        let soa = AabbSoA::from_aabbs(&boxes);
        let mut scalar = Vec::new();
        let mut wide = Vec::new();
        soa.overlap_into_with(CpuTier::Scalar, &query, &mut scalar);
        soa.overlap_into_with(CpuTier::Avx2, &query, &mut wide);
        let reference: Vec<u32> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&query))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(&scalar, &reference);
        prop_assert_eq!(&wide, &reference);
    }
}
