//! Build-time CPU-capability plumbing for the runtime dispatch tiers.
//!
//! The dispatch module needs to know at *compile* time whether the target
//! architecture even has the wide paths (`core::arch` + feature detection
//! are per-arch APIs), while the *choice* of tier happens at runtime via
//! `is_x86_feature_detected!`. This script translates the target arch into
//! a custom cfg so the source stays free of `target_arch` litter and new
//! architectures only touch this file.

fn main() {
    // Declare the custom cfgs so `--check-cfg` (and clippy) accept them.
    println!("cargo::rustc-check-cfg=cfg(scout_dispatch_x86_64)");
    if std::env::var("CARGO_CFG_TARGET_ARCH").as_deref() == Ok("x86_64") {
        println!("cargo::rustc-cfg=scout_dispatch_x86_64");
    }
    println!("cargo::rerun-if-changed=build.rs");
}
