//! Structure-of-arrays bulk kernels over object bounding boxes.
//!
//! The array-of-structs [`Aabb`] is right for tree nodes and single
//! queries, but bulk passes — "which of these N boxes overlap this
//! region?" — load six scattered doubles per element and defeat
//! vectorization. [`AabbSoA`] lays the same boxes out as six flat arrays
//! so the overlap test becomes six contiguous streams and one branchless
//! mask loop, which LLVM auto-vectorizes (4 boxes per iteration under the
//! AVX2 dispatch tier; see [`crate::dispatch`]).
//!
//! The kernel works in fixed-size blocks: flags for one block land in a
//! stack buffer, then a scalar scan appends the matching indices. That
//! keeps the hot loop vectorizable *and* the whole query allocation-free
//! apart from the caller-owned output vector.

use crate::aabb::Aabb;
use crate::dispatch::{cpu_tier, tier_available, CpuTier};

/// Block length of the mask/scan pipeline — small enough for the stack,
/// large enough that the scan amortizes.
const BLOCK: usize = 1024;

/// A set of AABBs in structure-of-arrays layout; indices are positions in
/// push order.
#[derive(Debug, Clone, Default)]
pub struct AabbSoA {
    min_x: Vec<f64>,
    min_y: Vec<f64>,
    min_z: Vec<f64>,
    max_x: Vec<f64>,
    max_y: Vec<f64>,
    max_z: Vec<f64>,
}

impl AabbSoA {
    /// An empty set.
    pub fn new() -> AabbSoA {
        AabbSoA::default()
    }

    /// Builds the SoA from an iterator of boxes.
    pub fn from_aabbs<'a, I: IntoIterator<Item = &'a Aabb>>(boxes: I) -> AabbSoA {
        let mut soa = AabbSoA::new();
        for b in boxes {
            soa.push(b);
        }
        soa
    }

    /// Appends one box.
    pub fn push(&mut self, b: &Aabb) {
        self.min_x.push(b.min.x);
        self.min_y.push(b.min.y);
        self.min_z.push(b.min.z);
        self.max_x.push(b.max.x);
        self.max_y.push(b.max.y);
        self.max_z.push(b.max.z);
    }

    /// Number of boxes.
    pub fn len(&self) -> usize {
        self.min_x.len()
    }

    /// True when no boxes are stored.
    pub fn is_empty(&self) -> bool {
        self.min_x.is_empty()
    }

    /// Removes all boxes, retaining capacity.
    pub fn clear(&mut self) {
        self.min_x.clear();
        self.min_y.clear();
        self.min_z.clear();
        self.max_x.clear();
        self.max_y.clear();
        self.max_z.clear();
    }

    /// The box at `idx` (test/diagnostic helper).
    pub fn get(&self, idx: usize) -> Aabb {
        Aabb::new(
            crate::vec3::Vec3::new(self.min_x[idx], self.min_y[idx], self.min_z[idx]),
            crate::vec3::Vec3::new(self.max_x[idx], self.max_y[idx], self.max_z[idx]),
        )
    }

    /// Appends to `out` the indices of all boxes intersecting `query`
    /// (touching counts, matching [`Aabb::intersects`]), in ascending
    /// order, using an explicit dispatch tier; unavailable tiers fall
    /// back to scalar. All tiers produce identical output.
    pub fn overlap_into_with(&self, tier: CpuTier, query: &Aabb, out: &mut Vec<u32>) {
        out.clear();
        let n = self.len();
        let mut flags = [0u8; BLOCK];
        let mut start = 0usize;
        while start < n {
            let end = (start + BLOCK).min(n);
            let block = &mut flags[..end - start];
            match tier {
                #[cfg(scout_dispatch_x86_64)]
                CpuTier::Avx2 if tier_available(tier) => {
                    // SAFETY: AVX2 support was just verified at runtime.
                    unsafe { overlap_flags_avx2(self, query, start, block) }
                }
                _ => overlap_flags_body(self, query, start, block),
            }
            for (off, &f) in block.iter().enumerate() {
                if f != 0 {
                    out.push((start + off) as u32);
                }
            }
            start = end;
        }
    }

    /// Appends to `out` the indices of all boxes intersecting `query`
    /// using the best compiled tier this machine supports.
    pub fn overlap_into(&self, query: &Aabb, out: &mut Vec<u32>) {
        self.overlap_into_with(cpu_tier(), query, out);
    }
}

/// The shared mask loop both compiled tiers inline: branchless per-axis
/// interval tests combined with `&`, one byte per box.
#[inline(always)]
fn overlap_flags_body(soa: &AabbSoA, q: &Aabb, start: usize, flags: &mut [u8]) {
    let end = start + flags.len();
    let (min_x, max_x) = (&soa.min_x[start..end], &soa.max_x[start..end]);
    let (min_y, max_y) = (&soa.min_y[start..end], &soa.max_y[start..end]);
    let (min_z, max_z) = (&soa.min_z[start..end], &soa.max_z[start..end]);
    for (i, f) in flags.iter_mut().enumerate() {
        let hit = (min_x[i] <= q.max.x)
            & (max_x[i] >= q.min.x)
            & (min_y[i] <= q.max.y)
            & (max_y[i] >= q.min.y)
            & (min_z[i] <= q.max.z)
            & (max_z[i] >= q.min.z);
        *f = hit as u8;
    }
}

#[cfg(scout_dispatch_x86_64)]
#[target_feature(enable = "avx2")]
fn overlap_flags_avx2(soa: &AabbSoA, q: &Aabb, start: usize, flags: &mut [u8]) {
    overlap_flags_body(soa, q, start, flags);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;

    fn grid_boxes() -> AabbSoA {
        // 5×5×5 unit boxes at integer corners.
        let mut soa = AabbSoA::new();
        for z in 0..5 {
            for y in 0..5 {
                for x in 0..5 {
                    let min = Vec3::new(x as f64, y as f64, z as f64);
                    soa.push(&Aabb::new(min, min + Vec3::splat(1.0)));
                }
            }
        }
        soa
    }

    #[test]
    fn matches_scalar_intersects_per_element() {
        let soa = grid_boxes();
        let query = Aabb::new(Vec3::new(1.5, 0.5, 2.0), Vec3::new(3.2, 2.5, 2.9));
        let mut out = Vec::new();
        soa.overlap_into(&query, &mut out);
        let expect: Vec<u32> =
            (0..soa.len()).filter(|&i| soa.get(i).intersects(&query)).map(|i| i as u32).collect();
        assert_eq!(out, expect);
        assert!(!out.is_empty());
    }

    #[test]
    fn tiers_agree() {
        let soa = grid_boxes();
        let query = Aabb::new(Vec3::splat(0.25), Vec3::splat(3.75));
        let mut scalar = Vec::new();
        let mut wide = Vec::new();
        soa.overlap_into_with(CpuTier::Scalar, &query, &mut scalar);
        soa.overlap_into_with(CpuTier::Avx2, &query, &mut wide);
        assert_eq!(scalar, wide);
    }

    #[test]
    fn touching_counts_and_empty_set_is_fine() {
        let mut soa = AabbSoA::new();
        let mut out = Vec::new();
        soa.overlap_into(&Aabb::new(Vec3::ZERO, Vec3::ONE), &mut out);
        assert!(out.is_empty());
        soa.push(&Aabb::new(Vec3::ONE, Vec3::splat(2.0)));
        soa.overlap_into(&Aabb::new(Vec3::ZERO, Vec3::ONE), &mut out);
        assert_eq!(out, vec![0], "corner touch must count as overlap");
    }

    #[test]
    fn blocks_larger_than_one_block_are_scanned() {
        // > BLOCK boxes so the block loop wraps at least once.
        let mut soa = AabbSoA::new();
        for i in 0..(super::BLOCK + 100) {
            let min = Vec3::new(i as f64 * 2.0, 0.0, 0.0);
            soa.push(&Aabb::new(min, min + Vec3::ONE));
        }
        let mut out = Vec::new();
        // A query spanning boxes around the block boundary.
        let query = Aabb::new(
            Vec3::new((super::BLOCK as f64 - 2.0) * 2.0, 0.0, 0.0),
            Vec3::new((super::BLOCK as f64 + 2.0) * 2.0 + 1.0, 1.0, 1.0),
        );
        soa.overlap_into(&query, &mut out);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&i| (i as usize) >= super::BLOCK - 2));
    }
}
