//! Range-query regions.
//!
//! The paper's microbenchmarks (Figure 10) describe queries by *volume*
//! (µm³) and *aspect ratio* — either a cube (ad-hoc queries, model building)
//! or a view frustum (walkthrough visualization). A frustum is enclosed by
//! an elongated box for culling (§7.2.3: "a sequence of spatial queries with
//! a volume (enclosing the view frustum)"), so regions here are axis-aligned
//! boxes parameterized by center, volume and aspect.

use crate::aabb::Aabb;
use crate::intersect::clip_segment_to_aabb;
use crate::shapes::Segment;
use crate::vec3::Vec3;

/// Query aspect ratio per Figure 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aspect {
    /// Equal side lengths.
    Cube,
    /// A box enclosing a view frustum: elongated along the (axis-aligned)
    /// view direction with side ratios 1 : 1 : 2.25.
    Frustum,
    /// Arbitrary side-length ratios (normalized internally).
    Box(Vec3),
}

impl Aspect {
    /// Side-length ratios, normalized so their product is 1.
    pub fn ratios(&self) -> Vec3 {
        let r = match self {
            Aspect::Cube => Vec3::ONE,
            Aspect::Frustum => Vec3::new(1.0, 1.0, 2.25),
            Aspect::Box(v) => *v,
        };
        let geo_mean = (r.x * r.y * r.z).cbrt();
        r / geo_mean
    }
}

/// An axis-aligned range-query region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRegion {
    aabb: Aabb,
}

impl QueryRegion {
    /// Region centered at `center` with the given `volume` and `aspect`.
    pub fn new(center: Vec3, volume: f64, aspect: Aspect) -> QueryRegion {
        assert!(volume > 0.0, "query volume must be positive, got {volume}");
        let side = volume.cbrt();
        let extent = aspect.ratios() * side;
        QueryRegion { aabb: Aabb::from_center_extent(center, extent) }
    }

    /// Region from an explicit box.
    pub fn from_aabb(aabb: Aabb) -> QueryRegion {
        QueryRegion { aabb }
    }

    /// The region's box.
    #[inline]
    pub fn aabb(&self) -> &Aabb {
        &self.aabb
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Vec3 {
        self.aabb.center()
    }

    /// Volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.aabb.volume()
    }

    /// Side lengths.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.aabb.extent()
    }

    /// Representative side length (cube root of the volume).
    #[inline]
    pub fn side(&self) -> f64 {
        self.volume().cbrt()
    }

    /// Region translated by `delta`.
    pub fn translated(&self, delta: Vec3) -> QueryRegion {
        QueryRegion { aabb: self.aabb.translated(delta) }
    }

    /// Region with the same center/aspect scaled to `factor ×` the volume.
    pub fn scaled(&self, factor: f64) -> QueryRegion {
        assert!(factor > 0.0);
        let s = factor.cbrt();
        QueryRegion { aabb: Aabb::from_center_extent(self.center(), self.extent() * s) }
    }

    /// Where (and in which direction) a segment leaves the region.
    ///
    /// Returns the boundary point at the segment's *exit* parameter together
    /// with the (normalized) outward direction, or `None` when the segment
    /// does not reach the boundary from inside.
    pub fn exit_of_segment(&self, seg: &Segment) -> Option<(Vec3, Vec3)> {
        let (_, t_exit) = clip_segment_to_aabb(seg, &self.aabb)?;
        // Exits only if the segment continues beyond the boundary.
        if t_exit >= 1.0 {
            return None;
        }
        let point = seg.at(t_exit);
        let dir = seg.direction().normalized()?;
        Some((point, dir))
    }

    /// Where a segment enters the region from outside.
    ///
    /// Returns the boundary point at the *entry* parameter and the inward
    /// direction, or `None` when the segment starts inside or misses.
    pub fn entry_of_segment(&self, seg: &Segment) -> Option<(Vec3, Vec3)> {
        let (t_enter, _) = clip_segment_to_aabb(seg, &self.aabb)?;
        if t_enter <= 0.0 {
            return None;
        }
        let point = seg.at(t_enter);
        let dir = seg.direction().normalized()?;
        Some((point, dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_region_has_requested_volume() {
        let q = QueryRegion::new(Vec3::ZERO, 80_000.0, Aspect::Cube);
        assert!((q.volume() - 80_000.0).abs() < 1e-6);
        let e = q.extent();
        assert!((e.x - e.y).abs() < 1e-9 && (e.y - e.z).abs() < 1e-9);
    }

    #[test]
    fn frustum_region_is_elongated_with_same_volume() {
        let q = QueryRegion::new(Vec3::ZERO, 30_000.0, Aspect::Frustum);
        assert!((q.volume() - 30_000.0).abs() < 1e-6);
        let e = q.extent();
        assert!(e.z > e.x, "frustum box should be elongated in z");
        assert!((e.z / e.x - 2.25).abs() < 1e-9);
    }

    #[test]
    fn custom_aspect_normalizes() {
        let q = QueryRegion::new(Vec3::ZERO, 1000.0, Aspect::Box(Vec3::new(4.0, 1.0, 1.0)));
        assert!((q.volume() - 1000.0).abs() < 1e-9);
        let e = q.extent();
        assert!((e.x / e.y - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_preserves_center_and_aspect() {
        let q = QueryRegion::new(Vec3::ONE, 1000.0, Aspect::Frustum);
        let s = q.scaled(8.0);
        assert!((s.volume() - 8000.0).abs() < 1e-6);
        assert_eq!(s.center(), Vec3::ONE);
        let (e1, e2) = (q.extent(), s.extent());
        assert!((e2.z / e2.x - e1.z / e1.x).abs() < 1e-9);
    }

    #[test]
    fn exit_point_on_boundary() {
        let q = QueryRegion::from_aabb(Aabb::new(Vec3::ZERO, Vec3::ONE));
        let seg = Segment::new(Vec3::splat(0.5), Vec3::new(2.0, 0.5, 0.5));
        let (p, d) = q.exit_of_segment(&seg).unwrap();
        assert!((p.x - 1.0).abs() < 1e-12);
        assert!((d.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_inside_segment_has_no_exit() {
        let q = QueryRegion::from_aabb(Aabb::new(Vec3::ZERO, Vec3::ONE));
        let seg = Segment::new(Vec3::splat(0.3), Vec3::splat(0.7));
        assert!(q.exit_of_segment(&seg).is_none());
    }

    #[test]
    fn entry_point_on_boundary() {
        let q = QueryRegion::from_aabb(Aabb::new(Vec3::ZERO, Vec3::ONE));
        let seg = Segment::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::splat(0.5));
        let (p, d) = q.entry_of_segment(&seg).unwrap();
        assert!((p.x - 0.0).abs() < 1e-12);
        assert!(d.x > 0.0);
        // Starting inside -> no entry.
        let inside = Segment::new(Vec3::splat(0.5), Vec3::new(2.0, 0.5, 0.5));
        assert!(q.entry_of_segment(&inside).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_volume_rejected() {
        let _ = QueryRegion::new(Vec3::ZERO, 0.0, Aspect::Cube);
    }
}
