//! Three-dimensional vector type used for all coordinates in the workspace.
//!
//! Coordinates are in micrometers (µm), matching the units used throughout
//! the SCOUT paper's evaluation (query volumes in µm³, gap distances in µm).

use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A 3-D vector / point with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component (µm).
    pub x: f64,
    /// Y component (µm).
    pub y: f64,
    /// Z component (µm).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    /// Returns the unit vector in this direction, or `None` for a
    /// (near-)zero vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(self / n)
        }
    }

    /// Like [`Vec3::normalized`] but falls back to `+x` for degenerate input.
    #[inline]
    pub fn normalized_or_x(self) -> Vec3 {
        self.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3 { x: self.x.min(other.x), y: self.y.min(other.y), z: self.z.min(other.z) }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3 { x: self.x.max(other.x), y: self.y.max(other.y), z: self.z.max(other.z) }
    }

    /// Component-wise clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Vec3, hi: Vec3) -> Vec3 {
        self.max(lo).min(hi)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// An arbitrary unit vector orthogonal to `self` (which must be nonzero).
    pub fn any_orthogonal(self) -> Vec3 {
        // Pick the axis least aligned with self to avoid degeneracy.
        let a = if self.x.abs() <= self.y.abs() && self.x.abs() <= self.z.abs() {
            Vec3::new(1.0, 0.0, 0.0)
        } else if self.y.abs() <= self.z.abs() {
            Vec3::new(0.0, 1.0, 0.0)
        } else {
            Vec3::new(0.0, 0.0, 1.0)
        };
        self.cross(a).normalized_or_x()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross_are_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(Vec3::new(1.0, 0.0, 0.0).norm(), 1.0);
        assert_eq!(Vec3::new(0.0, -1.0, 0.0).norm(), 1.0);
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        assert_eq!(Vec3::ZERO.normalized_or_x(), Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.5, 2.5, 4.5));
    }

    #[test]
    fn min_max_clamp() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 3.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(
            Vec3::new(10.0, -10.0, 0.5).clamp(Vec3::ZERO, Vec3::ONE),
            Vec3::new(1.0, 0.0, 0.5)
        );
    }

    #[test]
    fn any_orthogonal_is_orthogonal_unit() {
        for v in [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, -3.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-0.3, 12.0, 4.5),
        ] {
            let o = v.any_orthogonal();
            assert!(v.dot(o).abs() < 1e-9, "not orthogonal for {v:?}");
            assert!((o.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn index_matches_fields() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }
}
