//! Geometric primitives used to model spatial objects.
//!
//! The SCOUT datasets model objects as 3-D cylinders (neuron segments,
//! arteries), triangles (surface meshes such as the lung airway model) and
//! line segments (road networks). §4.2 of the paper reduces each object to
//! one of three *simplified* geometries — a point, a straight line, or a
//! minimum bounding rectangle — before grid hashing; [`Simplified`] captures
//! exactly those three options.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// A straight line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Vec3,
    /// End point.
    pub b: Vec3,
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub fn new(a: Vec3, b: Vec3) -> Segment {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Vec3 {
        (self.a + self.b) * 0.5
    }

    /// Direction from `a` to `b` (not normalized).
    #[inline]
    pub fn direction(&self) -> Vec3 {
        self.b - self.a
    }

    /// Point at parameter `t ∈ [0, 1]`.
    #[inline]
    pub fn at(&self, t: f64) -> Vec3 {
        self.a.lerp(self.b, t)
    }

    /// Tight bounding box.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        Aabb::from_corners(self.a, self.b)
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if len_sq <= f64::EPSILON {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn distance_to_point(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance(p)
    }
}

/// A truncated cone ("cylinder" in the paper's terminology): two endpoints
/// with a radius at each, the representation used for neuron morphologies
/// and arterial trees (§7.1: "Each cylinder is described by two end points
/// and a radius for each endpoint").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cylinder {
    /// First endpoint.
    pub a: Vec3,
    /// Second endpoint.
    pub b: Vec3,
    /// Radius at `a`.
    pub ra: f64,
    /// Radius at `b`.
    pub rb: f64,
}

impl Cylinder {
    /// Creates a cylinder.
    #[inline]
    pub fn new(a: Vec3, b: Vec3, ra: f64, rb: f64) -> Cylinder {
        Cylinder { a, b, ra, rb }
    }

    /// The center-line segment (the paper's simplification for cylinders:
    /// "SCOUT reduces the cylinder to a line segment by solely using the two
    /// endpoints").
    #[inline]
    pub fn axis(&self) -> Segment {
        Segment::new(self.a, self.b)
    }

    /// Largest of the two radii.
    #[inline]
    pub fn max_radius(&self) -> f64 {
        self.ra.max(self.rb)
    }

    /// Conservative bounding box: the axis box expanded by the max radius.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        self.axis().aabb().expanded(self.max_radius())
    }
}

/// A triangle, used for polygon-mesh datasets (lung airway model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
}

impl Triangle {
    /// Creates a triangle.
    #[inline]
    pub fn new(a: Vec3, b: Vec3, c: Vec3) -> Triangle {
        Triangle { a, b, c }
    }

    /// Centroid.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Tight bounding box.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points([self.a, self.b, self.c])
    }
}

/// A sphere, used for somata and as a generic blob primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Center.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
}

impl Sphere {
    /// Creates a sphere.
    #[inline]
    pub fn new(center: Vec3, radius: f64) -> Sphere {
        Sphere { center, radius }
    }

    /// Tight bounding box.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        Aabb::from_center_extent(self.center, Vec3::splat(2.0 * self.radius))
    }
}

/// Any spatial-object geometry appearing in a SCOUT dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// A bare point.
    Point(Vec3),
    /// A line segment (road networks).
    Segment(Segment),
    /// A cylinder (neurons, arteries).
    Cylinder(Cylinder),
    /// A mesh triangle (lung airway surfaces).
    Triangle(Triangle),
    /// A sphere (somata).
    Sphere(Sphere),
}

/// One of the three geometry simplifications of §4.2 used for grid hashing:
/// "A minimum bounding rectangle surrounding the object, a straight line or
/// a point can be used depending on the geometry of the object."
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Simplified {
    /// Representative point (centroid).
    Point(Vec3),
    /// Straight-line approximation (cylinder/segment axis).
    Segment(Segment),
    /// Minimum bounding rectangle (box).
    Box(Aabb),
}

/// Which simplification to apply when mapping objects to grid cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Simplification {
    /// Reduce every object to its centroid.
    Point,
    /// Reduce elongated objects to their axis segment (the paper's choice
    /// for the cylinder datasets); falls back to box for triangles.
    #[default]
    Segment,
    /// Use the minimum bounding box.
    Mbr,
}

impl Shape {
    /// Tight (or conservatively tight) bounding box.
    pub fn aabb(&self) -> Aabb {
        match self {
            Shape::Point(p) => Aabb::from_point(*p),
            Shape::Segment(s) => s.aabb(),
            Shape::Cylinder(c) => c.aabb(),
            Shape::Triangle(t) => t.aabb(),
            Shape::Sphere(s) => s.aabb(),
        }
    }

    /// Representative center point.
    pub fn centroid(&self) -> Vec3 {
        match self {
            Shape::Point(p) => *p,
            Shape::Segment(s) => s.midpoint(),
            Shape::Cylinder(c) => c.axis().midpoint(),
            Shape::Triangle(t) => t.centroid(),
            Shape::Sphere(s) => s.center,
        }
    }

    /// Applies a §4.2 geometry simplification.
    pub fn simplified(&self, mode: Simplification) -> Simplified {
        match mode {
            Simplification::Point => Simplified::Point(self.centroid()),
            Simplification::Mbr => Simplified::Box(self.aabb()),
            Simplification::Segment => match self {
                Shape::Point(p) => Simplified::Point(*p),
                Shape::Segment(s) => Simplified::Segment(*s),
                Shape::Cylinder(c) => Simplified::Segment(c.axis()),
                Shape::Sphere(s) => Simplified::Point(s.center),
                // Triangles have no meaningful axis; use the MBR.
                Shape::Triangle(t) => Simplified::Box(t.aabb()),
            },
        }
    }

    /// The axis segment for elongated shapes (used for exit-direction
    /// estimation); `None` for points/spheres/triangles.
    pub fn axis_segment(&self) -> Option<Segment> {
        match self {
            Shape::Segment(s) => Some(*s),
            Shape::Cylinder(c) => Some(c.axis()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_basics() {
        let s = Segment::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(s.length(), 2.0);
        assert_eq!(s.midpoint(), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(s.at(0.25), Vec3::new(0.5, 0.0, 0.0));
    }

    #[test]
    fn segment_closest_point_clamps() {
        let s = Segment::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(s.closest_point(Vec3::new(-5.0, 3.0, 0.0)), Vec3::ZERO);
        assert_eq!(s.closest_point(Vec3::new(9.0, 3.0, 0.0)), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(s.closest_point(Vec3::new(0.5, 3.0, 0.0)), Vec3::new(0.5, 0.0, 0.0));
        assert!((s.distance_to_point(Vec3::new(0.5, 3.0, 0.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment_closest_point() {
        let s = Segment::new(Vec3::ONE, Vec3::ONE);
        assert_eq!(s.closest_point(Vec3::new(4.0, 4.0, 4.0)), Vec3::ONE);
    }

    #[test]
    fn cylinder_aabb_includes_radius() {
        let c = Cylinder::new(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 1.0, 2.0);
        let b = c.aabb();
        assert!(b.contains_point(Vec3::new(10.0, 2.0, 0.0)));
        assert!(b.contains_point(Vec3::new(-2.0, 0.0, 0.0)));
        assert_eq!(c.max_radius(), 2.0);
    }

    #[test]
    fn shape_centroids() {
        let t = Shape::Triangle(Triangle::new(
            Vec3::ZERO,
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        ));
        assert_eq!(t.centroid(), Vec3::new(1.0, 1.0, 0.0));
        let s = Shape::Sphere(Sphere::new(Vec3::ONE, 2.0));
        assert_eq!(s.centroid(), Vec3::ONE);
    }

    #[test]
    fn simplification_modes() {
        let cyl = Shape::Cylinder(Cylinder::new(Vec3::ZERO, Vec3::new(4.0, 0.0, 0.0), 0.5, 0.5));
        match cyl.simplified(Simplification::Segment) {
            Simplified::Segment(s) => assert_eq!(s.b, Vec3::new(4.0, 0.0, 0.0)),
            other => panic!("expected segment, got {other:?}"),
        }
        match cyl.simplified(Simplification::Point) {
            Simplified::Point(p) => assert_eq!(p, Vec3::new(2.0, 0.0, 0.0)),
            other => panic!("expected point, got {other:?}"),
        }
        match cyl.simplified(Simplification::Mbr) {
            Simplified::Box(b) => assert!(b.contains_point(Vec3::new(4.0, 0.5, 0.5))),
            other => panic!("expected box, got {other:?}"),
        }
        // Triangles fall back to MBR under Segment mode.
        let tri = Shape::Triangle(Triangle::new(Vec3::ZERO, Vec3::ONE, Vec3::new(1.0, 0.0, 0.0)));
        assert!(matches!(tri.simplified(Simplification::Segment), Simplified::Box(_)));
    }

    #[test]
    fn axis_segment_only_for_elongated() {
        assert!(Shape::Point(Vec3::ZERO).axis_segment().is_none());
        assert!(Shape::Cylinder(Cylinder::new(Vec3::ZERO, Vec3::ONE, 0.1, 0.1))
            .axis_segment()
            .is_some());
    }
}
