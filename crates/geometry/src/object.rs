//! The spatial-object data model shared by every crate in the workspace.
//!
//! A dataset is a flat array of [`SpatialObject`]s. Each object carries a
//! ground-truth [`StructureId`] identifying the spatial structure (neuron
//! branch system, artery, airway, road) it belongs to. The structure id is
//! used **only** by the dataset generators and the evaluation harness —
//! SCOUT itself never reads it (§7.1: "we do not exploit any application
//! specific information").

use crate::aabb::Aabb;
use crate::shapes::Shape;
use crate::vec3::Vec3;

/// Dense identifier of an object within a dataset (index into the object
/// array). `u32` bounds datasets at ~4.3 billion objects, far above the
/// simulated scales used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Ground-truth identifier of the spatial structure an object belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureId(pub u32);

/// One spatial object in a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialObject {
    /// Dense object id (equals its position in the dataset array).
    pub id: ObjectId,
    /// Ground-truth structure membership (generator/evaluation only).
    pub structure: StructureId,
    /// Geometry.
    pub shape: Shape,
}

impl SpatialObject {
    /// Creates an object.
    pub fn new(id: ObjectId, structure: StructureId, shape: Shape) -> SpatialObject {
        SpatialObject { id, structure, shape }
    }

    /// Bounding box of the geometry.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        self.shape.aabb()
    }

    /// Centroid of the geometry.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        self.shape.centroid()
    }
}

/// An explicit object-level adjacency graph in CSR form.
///
/// Present when a dataset's guiding structure is *explicit* (§4.1 of the
/// paper): mesh face-adjacency for polygon meshes, shared-endpoint
/// adjacency for road networks. SCOUT uses it directly instead of grid
/// hashing when available.
#[derive(Debug, Clone)]
pub struct ObjectAdjacency {
    offsets: Vec<u32>,
    edges: Vec<ObjectId>,
}

impl ObjectAdjacency {
    /// Builds the CSR from per-object neighbor lists.
    pub fn from_lists(lists: &[Vec<ObjectId>]) -> ObjectAdjacency {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut edges = Vec::new();
        offsets.push(0u32);
        for l in lists {
            edges.extend_from_slice(l);
            offsets.push(edges.len() as u32);
        }
        ObjectAdjacency { offsets, edges }
    }

    /// Number of objects covered.
    pub fn object_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of an object.
    #[inline]
    pub fn neighbors(&self, o: ObjectId) -> &[ObjectId] {
        let i = o.index();
        &self.edges[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::Cylinder;

    #[test]
    fn object_accessors() {
        let o = SpatialObject::new(
            ObjectId(7),
            StructureId(3),
            Shape::Cylinder(Cylinder::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 0.5, 0.5)),
        );
        assert_eq!(o.id.index(), 7);
        assert_eq!(o.centroid(), Vec3::new(1.0, 0.0, 0.0));
        assert!(o.aabb().contains_point(Vec3::new(2.0, 0.5, 0.0)));
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ObjectId(1));
        s.insert(ObjectId(1));
        s.insert(ObjectId(2));
        assert_eq!(s.len(), 2);
        assert!(ObjectId(1) < ObjectId(2));
    }

    #[test]
    fn csr_adjacency() {
        let lists = vec![vec![ObjectId(1)], vec![ObjectId(0), ObjectId(2)], vec![ObjectId(1)]];
        let adj = ObjectAdjacency::from_lists(&lists);
        assert_eq!(adj.object_count(), 3);
        assert_eq!(adj.edge_count(), 4);
        assert_eq!(adj.neighbors(ObjectId(1)), &[ObjectId(0), ObjectId(2)]);
        assert_eq!(adj.neighbors(ObjectId(0)), &[ObjectId(1)]);
    }
}
