//! Runtime CPU-capability dispatch for the slice kernels.
//!
//! The bulk geometry kernels (Morton/Hilbert slice encoding, SoA AABB
//! overlap) ship in two compiled versions: a portable scalar build and a
//! wide build compiled with `#[target_feature(enable = "avx2")]` so LLVM
//! may auto-vectorize with 256-bit registers. Which one runs is decided
//! once per process from the CPU's actual capabilities — the binary stays
//! portable (no `-C target-cpu=native` required) while hot loops get the
//! wide code paths on machines that have them.
//!
//! The compile-time side lives in `build.rs`: the `scout_dispatch_x86_64`
//! cfg marks targets where the wide paths exist at all. On every other
//! architecture [`cpu_tier`] is always [`CpuTier::Scalar`] and the
//! explicit-tier kernel entry points silently fall back to scalar, so
//! callers and tests never need per-arch cfgs.
//!
//! Every kernel's tiers are property-tested to agree element-for-element —
//! the tier is a pure performance choice and must never change results
//! (the determinism contract of DESIGN.md §9 depends on it).

use std::sync::OnceLock;

/// A compiled kernel version the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuTier {
    /// Portable baseline; compiled for the target's default features.
    Scalar,
    /// x86-64 AVX2 (256-bit) build. Requesting it on hardware without
    /// AVX2 (or on non-x86-64 targets) runs the scalar build instead —
    /// the tier is a hint, never an unsafe promise.
    Avx2,
}

impl CpuTier {
    /// Stable lower-case name for reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            CpuTier::Scalar => "scalar",
            CpuTier::Avx2 => "avx2",
        }
    }
}

/// The best tier this machine supports, detected once per process.
pub fn cpu_tier() -> CpuTier {
    static TIER: OnceLock<CpuTier> = OnceLock::new();
    *TIER.get_or_init(detect)
}

fn detect() -> CpuTier {
    #[cfg(scout_dispatch_x86_64)]
    if std::arch::is_x86_feature_detected!("avx2") {
        return CpuTier::Avx2;
    }
    CpuTier::Scalar
}

/// True when `tier`'s compiled path may actually run on this machine;
/// the kernels use this to fall back to scalar safely.
#[inline]
pub(crate) fn tier_available(tier: CpuTier) -> bool {
    match tier {
        CpuTier::Scalar => true,
        #[cfg(scout_dispatch_x86_64)]
        CpuTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(not(scout_dispatch_x86_64))]
        CpuTier::Avx2 => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detected_tier_is_available() {
        assert!(tier_available(cpu_tier()));
        assert!(tier_available(CpuTier::Scalar));
    }

    #[test]
    fn tier_names() {
        assert_eq!(CpuTier::Scalar.name(), "scalar");
        assert_eq!(CpuTier::Avx2.name(), "avx2");
    }
}
