//! Uniform spatial grids.
//!
//! Grid hashing (§4.2) "partitions the entire three-dimensional space of
//! [the] range query into equi-volume grid cells and each object is mapped
//! to grid cells based on how many grid cells it intersects with". The grid
//! resolution — the total cell count — is SCOUT's main tuning knob
//! (Figure 13e sweeps 32768 … 8 cells).

use crate::aabb::Aabb;
use crate::shapes::{Segment, Simplified};
use crate::vec3::Vec3;

/// Identifier of a cell within a [`UniformGrid`] (flattened x-major index).
pub type CellId = u32;

/// A uniform grid over a bounding box with `dims[0]×dims[1]×dims[2]` cells.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    bounds: Aabb,
    dims: [u32; 3],
    cell_size: Vec3,
}

impl UniformGrid {
    /// Grid over `bounds` with explicit per-axis cell counts (each ≥ 1).
    pub fn new(bounds: Aabb, dims: [u32; 3]) -> UniformGrid {
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        assert!(dims.iter().all(|&d| d >= 1), "grid dims must be >= 1, got {dims:?}");
        let e = bounds.extent();
        let cell_size = Vec3::new(e.x / dims[0] as f64, e.y / dims[1] as f64, e.z / dims[2] as f64);
        UniformGrid { bounds, dims, cell_size }
    }

    /// Grid over `bounds` with approximately `resolution` equi-volume cells.
    ///
    /// Uses `⌈resolution^(1/3)⌉` cells per axis rounded to keep the total
    /// close to the request; resolutions that are perfect cubes (8, 64, 512,
    /// 4096, 32768 — the Figure 13e sweep) map exactly.
    pub fn with_resolution(bounds: Aabb, resolution: u32) -> UniformGrid {
        let res = resolution.max(1);
        let per_axis = (res as f64).cbrt().round().max(1.0) as u32;
        UniformGrid::new(bounds, [per_axis; 3])
    }

    /// The grid's bounding box.
    #[inline]
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// Per-axis cell counts.
    #[inline]
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> u32 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Side lengths of one cell.
    #[inline]
    pub fn cell_size(&self) -> Vec3 {
        self.cell_size
    }

    /// Length of a cell's space diagonal — the maximum distance between two
    /// objects that grid hashing may connect.
    #[inline]
    pub fn cell_diagonal(&self) -> f64 {
        self.cell_size.norm()
    }

    /// Per-axis cell coordinates of a point, clamped into the grid.
    pub fn coords_of(&self, p: Vec3) -> [u32; 3] {
        let rel = p - self.bounds.min;
        let mut out = [0u32; 3];
        for a in 0..3 {
            let c =
                if self.cell_size[a] <= 0.0 { 0.0 } else { (rel[a] / self.cell_size[a]).floor() };
            out[a] = (c.max(0.0) as u32).min(self.dims[a] - 1);
        }
        out
    }

    /// Flattened cell id from per-axis coordinates.
    #[inline]
    pub fn cell_id(&self, c: [u32; 3]) -> CellId {
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// Cell containing a point (clamped into the grid).
    #[inline]
    pub fn cell_of(&self, p: Vec3) -> CellId {
        self.cell_id(self.coords_of(p))
    }

    /// Bounding box of a cell given its per-axis coordinates.
    pub fn cell_aabb(&self, c: [u32; 3]) -> Aabb {
        let min = Vec3::new(
            self.bounds.min.x + c[0] as f64 * self.cell_size.x,
            self.bounds.min.y + c[1] as f64 * self.cell_size.y,
            self.bounds.min.z + c[2] as f64 * self.cell_size.z,
        );
        Aabb::new(min, min + self.cell_size)
    }

    /// Per-axis coordinates from a flattened id.
    pub fn coords_from_id(&self, id: CellId) -> [u32; 3] {
        let x = id % self.dims[0];
        let y = (id / self.dims[0]) % self.dims[1];
        let z = id / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Appends the ids of all cells a segment passes through (3-D DDA /
    /// Amanatides–Woo traversal, with endpoints clamped into the grid).
    pub fn cells_for_segment(&self, seg: &Segment, out: &mut Vec<CellId>) {
        let start = self.coords_of(seg.a);
        let end = self.coords_of(seg.b);
        if start == end {
            out.push(self.cell_id(start));
            return;
        }
        // Amanatides–Woo: step cell-by-cell along the ray from a to b.
        let dir = seg.direction();
        let mut cur = start;
        let mut step = [0i64; 3];
        let mut t_max = [f64::INFINITY; 3];
        let mut t_delta = [f64::INFINITY; 3];
        for a in 0..3 {
            if dir[a] > 0.0 {
                step[a] = 1;
                let next_boundary = self.bounds.min[a] + (cur[a] as f64 + 1.0) * self.cell_size[a];
                t_max[a] = (next_boundary - seg.a[a]) / dir[a];
                t_delta[a] = self.cell_size[a] / dir[a];
            } else if dir[a] < 0.0 {
                step[a] = -1;
                let next_boundary = self.bounds.min[a] + cur[a] as f64 * self.cell_size[a];
                t_max[a] = (next_boundary - seg.a[a]) / dir[a];
                t_delta[a] = self.cell_size[a] / -dir[a];
            }
        }
        out.push(self.cell_id(cur));
        // Every step moves one axis one cell toward `end`, so the walk
        // needs exactly |Δx|+|Δy|+|Δz| ≤ Σ(dims−1) steps; the cap is pure
        // defense against floating-point stalls, not a correctness bound.
        let max_steps = (self.dims[0] + self.dims[1] + self.dims[2]) as usize + 3;
        for _ in 0..max_steps {
            if cur == end {
                break;
            }
            // Advance along the *unfinished* axis with the nearest cell
            // boundary. An axis that has reached its endpoint coordinate
            // is frozen: a segment is monotone per axis, so no further
            // cells can lie beyond it, and accumulated t_max error at an
            // exact corner crossing could otherwise re-step a finished
            // axis, walk off the lattice, and drop the endpoint cell.
            let mut axis = usize::MAX;
            let mut best = f64::INFINITY;
            for a in 0..3 {
                if cur[a] != end[a] && (axis == usize::MAX || t_max[a] < best) {
                    axis = a;
                    best = t_max[a];
                }
            }
            // `cur != end` guarantees an unfinished axis, and stepping it
            // toward `end` stays inside the grid by construction.
            cur[axis] = (cur[axis] as i64 + step[axis]) as u32;
            t_max[axis] += t_delta[axis];
            out.push(self.cell_id(cur));
        }
        if cur != end {
            // Unreachable under the step-count argument above, but the
            // contract — the endpoint cell is always reported — must hold
            // even if floating point misbehaves.
            out.push(self.cell_id(end));
        }
    }

    /// Appends the ids of all cells overlapping a box (clamped to the grid).
    pub fn cells_for_aabb(&self, aabb: &Aabb, out: &mut Vec<CellId>) {
        if !aabb.intersects(&self.bounds) {
            return;
        }
        let lo = self.coords_of(aabb.min);
        let hi = self.coords_of(aabb.max);
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    out.push(self.cell_id([x, y, z]));
                }
            }
        }
    }

    /// Appends the cells covered by a simplified object geometry (§4.2).
    pub fn cells_for_simplified(&self, s: &Simplified, out: &mut Vec<CellId>) {
        match s {
            Simplified::Point(p) => out.push(self.cell_of(*p)),
            Simplified::Segment(seg) => self.cells_for_segment(seg, out),
            Simplified::Box(b) => self.cells_for_aabb(b, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> UniformGrid {
        UniformGrid::new(Aabb::new(Vec3::ZERO, Vec3::splat(4.0)), [4, 4, 4])
    }

    #[test]
    fn resolution_rounds_to_cube() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(UniformGrid::with_resolution(b, 32_768).dims(), [32; 3]);
        assert_eq!(UniformGrid::with_resolution(b, 4_096).dims(), [16; 3]);
        assert_eq!(UniformGrid::with_resolution(b, 512).dims(), [8; 3]);
        assert_eq!(UniformGrid::with_resolution(b, 64).dims(), [4; 3]);
        assert_eq!(UniformGrid::with_resolution(b, 8).dims(), [2; 3]);
        assert_eq!(UniformGrid::with_resolution(b, 1).dims(), [1; 3]);
    }

    #[test]
    fn cell_of_points() {
        let g = grid4();
        assert_eq!(g.coords_of(Vec3::new(0.5, 0.5, 0.5)), [0, 0, 0]);
        assert_eq!(g.coords_of(Vec3::new(3.5, 0.5, 1.5)), [3, 0, 1]);
        // Clamping outside points.
        assert_eq!(g.coords_of(Vec3::new(-1.0, 9.0, 4.0)), [0, 3, 3]);
    }

    #[test]
    fn cell_id_round_trip() {
        let g = grid4();
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    let id = g.cell_id([x, y, z]);
                    assert_eq!(g.coords_from_id(id), [x, y, z]);
                }
            }
        }
    }

    #[test]
    fn cell_aabb_tiles_bounds() {
        let g = grid4();
        let mut vol = 0.0;
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    vol += g.cell_aabb([x, y, z]).volume();
                }
            }
        }
        assert!((vol - g.bounds().volume()).abs() < 1e-9);
    }

    #[test]
    fn segment_traversal_straight_line() {
        let g = grid4();
        let mut cells = Vec::new();
        g.cells_for_segment(
            &Segment::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(3.5, 0.5, 0.5)),
            &mut cells,
        );
        let expect: Vec<CellId> = (0..4).map(|x| g.cell_id([x, 0, 0])).collect();
        assert_eq!(cells, expect);
    }

    #[test]
    fn segment_traversal_diagonal_touches_start_and_end() {
        let g = grid4();
        let mut cells = Vec::new();
        let seg = Segment::new(Vec3::new(0.2, 0.2, 0.2), Vec3::new(3.8, 3.8, 3.8));
        g.cells_for_segment(&seg, &mut cells);
        assert_eq!(*cells.first().unwrap(), g.cell_of(seg.a));
        assert_eq!(*cells.last().unwrap(), g.cell_of(seg.b));
        // A diagonal in a 4³ grid crosses at least 4 and at most 10 cells.
        assert!(cells.len() >= 4 && cells.len() <= 10, "len={}", cells.len());
    }

    #[test]
    fn segment_within_one_cell() {
        let g = grid4();
        let mut cells = Vec::new();
        g.cells_for_segment(
            &Segment::new(Vec3::new(0.1, 0.1, 0.1), Vec3::new(0.9, 0.9, 0.9)),
            &mut cells,
        );
        assert_eq!(cells, vec![g.cell_id([0, 0, 0])]);
    }

    #[test]
    fn aabb_cells_cover_box() {
        let g = grid4();
        let mut cells = Vec::new();
        g.cells_for_aabb(
            &Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(2.5, 1.5, 0.9)),
            &mut cells,
        );
        // x: cells 0..=2, y: 0..=1, z: 0 => 3*2*1 = 6 cells
        assert_eq!(cells.len(), 6);
    }

    #[test]
    fn disjoint_aabb_yields_no_cells() {
        let g = grid4();
        let mut cells = Vec::new();
        g.cells_for_aabb(&Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0)), &mut cells);
        assert!(cells.is_empty());
    }
}
