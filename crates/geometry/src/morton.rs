//! Morton (Z-order) codes.
//!
//! Used as a cheap locality-preserving ordering in index bulk loading and as
//! a comparison point for the Hilbert curve (Hilbert preserves locality
//! strictly better; see the property tests).

/// Spreads the low 21 bits of `v` so there are two zero bits between each.
#[inline]
fn part1by2(v: u32) -> u64 {
    let mut x = (v as u64) & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`part1by2`].
#[inline]
fn compact1by2(v: u64) -> u32 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Morton code of 3-D cell coordinates (each < 2²¹).
#[inline]
pub fn morton_index_3d(coords: [u32; 3]) -> u64 {
    debug_assert!(coords.iter().all(|&c| c < (1 << 21)));
    part1by2(coords[0]) | (part1by2(coords[1]) << 1) | (part1by2(coords[2]) << 2)
}

/// Inverse of [`morton_index_3d`].
#[inline]
pub fn morton_coords_3d(index: u64) -> [u32; 3] {
    [compact1by2(index), compact1by2(index >> 1), compact1by2(index >> 2)]
}

/// The shared encoding loop both compiled tiers inline: pure bit
/// shuffling with no branches, which LLVM auto-vectorizes under the wide
/// tier's 256-bit feature set.
#[inline(always)]
fn morton_slice_body(coords: &[[u32; 3]], out: &mut [u64]) {
    for (c, slot) in coords.iter().zip(out.iter_mut()) {
        *slot = morton_index_3d(*c);
    }
}

#[cfg(scout_dispatch_x86_64)]
#[target_feature(enable = "avx2")]
fn morton_slice_avx2(coords: &[[u32; 3]], out: &mut [u64]) {
    morton_slice_body(coords, out);
}

/// Encodes a slice of cell coordinates with an explicit dispatch tier;
/// unavailable tiers fall back to scalar. All tiers produce identical
/// output (property-tested) — the tier only selects compiled code.
pub fn morton_indices_3d_with(
    tier: crate::dispatch::CpuTier,
    coords: &[[u32; 3]],
    out: &mut Vec<u64>,
) {
    out.clear();
    out.resize(coords.len(), 0);
    match tier {
        #[cfg(scout_dispatch_x86_64)]
        crate::dispatch::CpuTier::Avx2 if crate::dispatch::tier_available(tier) => {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { morton_slice_avx2(coords, out) }
        }
        _ => morton_slice_body(coords, out),
    }
}

/// Encodes a slice of cell coordinates into `out` (cleared first) using
/// the best compiled tier this machine supports — the bulk counterpart of
/// [`morton_index_3d`] for SoA encoding loops.
pub fn morton_indices_3d(coords: &[[u32; 3]], out: &mut Vec<u64>) {
    morton_indices_3d_with(crate::dispatch::cpu_tier(), coords, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for c in [[0u32, 0, 0], [1, 2, 3], [1023, 511, 255], [(1 << 21) - 1, 0, (1 << 21) - 1]] {
            assert_eq!(morton_coords_3d(morton_index_3d(c)), c);
        }
    }

    #[test]
    fn ordering_within_octants() {
        // All cells in the low octant sort before any in the high octant.
        let lo = morton_index_3d([1, 1, 1]);
        let hi = morton_index_3d([2, 0, 0]);
        assert!(lo < hi);
    }

    #[test]
    fn interleave_pattern() {
        // x=1 -> bit 0, y=1 -> bit 1, z=1 -> bit 2.
        assert_eq!(morton_index_3d([1, 0, 0]), 0b001);
        assert_eq!(morton_index_3d([0, 1, 0]), 0b010);
        assert_eq!(morton_index_3d([0, 0, 1]), 0b100);
        assert_eq!(morton_index_3d([1, 1, 1]), 0b111);
    }
}
