//! Hilbert space-filling curves in 2-D and 3-D.
//!
//! The Hilbert-Prefetch baseline [22] assigns each grid cell a Hilbert value
//! and prefetches cells whose values neighbor the current cell's value.
//! Encoding/decoding uses Skilling's transpose algorithm ("Programming the
//! Hilbert curve", AIP 2004), which works for any dimension and bit depth.

/// Maximum bits per axis for a 3-D curve so the index fits in `u64`.
pub const MAX_ORDER_3D: u32 = 21;
/// Maximum bits per axis for a 2-D curve so the index fits in `u64`.
pub const MAX_ORDER_2D: u32 = 32;

#[inline]
fn axes_to_transpose<const N: usize>(x: &mut [u32; N], bits: u32) {
    // Inverse undo.
    let mut q: u32 = 1 << (bits - 1);
    while q > 1 {
        let p = q - 1;
        for i in 0..N {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..N {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    q = 1 << (bits - 1);
    while q > 1 {
        if x[N - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

#[inline]
fn transpose_to_axes<const N: usize>(x: &mut [u32; N], bits: u32) {
    // Gray decode by H ^ (H/2).
    let t = x[N - 1] >> 1;
    for i in (1..N).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q: u32 = 2;
    while q != (1u32 << bits) {
        let p = q - 1;
        for i in (0..N).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Packs the transposed representation into a single index, MSB-first.
#[inline]
fn pack<const N: usize>(x: &[u32; N], bits: u32) -> u64 {
    let mut out: u64 = 0;
    for b in (0..bits).rev() {
        for v in x.iter() {
            out = (out << 1) | u64::from((v >> b) & 1);
        }
    }
    out
}

/// Unpacks an index into the transposed representation.
#[inline]
fn unpack<const N: usize>(index: u64, bits: u32) -> [u32; N] {
    let mut x = [0u32; N];
    let total = bits * N as u32;
    for pos in 0..total {
        let bit = (index >> (total - 1 - pos)) & 1;
        let axis = (pos as usize) % N;
        let level = bits - 1 - pos / N as u32;
        x[axis] |= (bit as u32) << level;
    }
    x
}

/// Hilbert index of 3-D cell coordinates with `order` bits per axis.
///
/// Coordinates must be `< 2^order`; `order ≤ `[`MAX_ORDER_3D`].
pub fn hilbert_index_3d(coords: [u32; 3], order: u32) -> u64 {
    assert!((1..=MAX_ORDER_3D).contains(&order), "order out of range: {order}");
    debug_assert!(coords.iter().all(|&c| c < (1u32 << order)));
    let mut x = coords;
    axes_to_transpose(&mut x, order);
    pack(&x, order)
}

/// Inverse of [`hilbert_index_3d`].
pub fn hilbert_coords_3d(index: u64, order: u32) -> [u32; 3] {
    assert!((1..=MAX_ORDER_3D).contains(&order), "order out of range: {order}");
    let mut x = unpack::<3>(index, order);
    transpose_to_axes(&mut x, order);
    x
}

/// The shared bulk-encoding loop both compiled tiers inline. Skilling's
/// transpose is branchy per element, so the win of the wide tier is
/// mostly better scalar codegen; the loop shape still keeps elements
/// independent so the compiler may interleave them.
#[inline(always)]
fn hilbert_slice_body(coords: &[[u32; 3]], order: u32, out: &mut [u64]) {
    for (c, slot) in coords.iter().zip(out.iter_mut()) {
        let mut x = *c;
        axes_to_transpose(&mut x, order);
        *slot = pack(&x, order);
    }
}

#[cfg(scout_dispatch_x86_64)]
#[target_feature(enable = "avx2")]
fn hilbert_slice_avx2(coords: &[[u32; 3]], order: u32, out: &mut [u64]) {
    hilbert_slice_body(coords, order, out);
}

/// Encodes a slice of cell coordinates with an explicit dispatch tier;
/// unavailable tiers fall back to scalar. All tiers produce identical
/// output (property-tested) — the tier only selects compiled code.
pub fn hilbert_indices_3d_with(
    tier: crate::dispatch::CpuTier,
    coords: &[[u32; 3]],
    order: u32,
    out: &mut Vec<u64>,
) {
    assert!((1..=MAX_ORDER_3D).contains(&order), "order out of range: {order}");
    debug_assert!(coords.iter().all(|c| c.iter().all(|&v| v < (1u32 << order))));
    out.clear();
    out.resize(coords.len(), 0);
    match tier {
        #[cfg(scout_dispatch_x86_64)]
        crate::dispatch::CpuTier::Avx2 if crate::dispatch::tier_available(tier) => {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { hilbert_slice_avx2(coords, order, out) }
        }
        _ => hilbert_slice_body(coords, order, out),
    }
}

/// Encodes a slice of cell coordinates into `out` (cleared first) using
/// the best compiled tier this machine supports — the bulk counterpart of
/// [`hilbert_index_3d`] for SoA encoding loops (e.g. keying a whole
/// dataset's centroids for a Hilbert tour).
pub fn hilbert_indices_3d(coords: &[[u32; 3]], order: u32, out: &mut Vec<u64>) {
    hilbert_indices_3d_with(crate::dispatch::cpu_tier(), coords, order, out);
}

/// Hilbert index of 2-D cell coordinates with `order` bits per axis.
pub fn hilbert_index_2d(coords: [u32; 2], order: u32) -> u64 {
    assert!((1..=MAX_ORDER_2D).contains(&order), "order out of range: {order}");
    debug_assert!(order == 32 || coords.iter().all(|&c| (c as u64) < (1u64 << order)));
    let mut x = coords;
    axes_to_transpose(&mut x, order);
    pack(&x, order)
}

/// Inverse of [`hilbert_index_2d`].
pub fn hilbert_coords_2d(index: u64, order: u32) -> [u32; 2] {
    assert!((1..=MAX_ORDER_2D).contains(&order), "order out of range: {order}");
    let mut x = unpack::<2>(index, order);
    transpose_to_axes(&mut x, order);
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order1_3d_visits_all_cells_once() {
        let mut seen = [false; 8];
        for x in 0..2u32 {
            for y in 0..2u32 {
                for z in 0..2u32 {
                    let h = hilbert_index_3d([x, y, z], 1) as usize;
                    assert!(h < 8);
                    assert!(!seen[h], "duplicate index {h}");
                    seen[h] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_trip_3d() {
        for order in [1u32, 2, 3, 5] {
            let n = 1u32 << order;
            for x in (0..n).step_by(3) {
                for y in (0..n).step_by(2) {
                    for z in 0..n.min(4) {
                        let c = [x, y, z];
                        let h = hilbert_index_3d(c, order);
                        assert_eq!(hilbert_coords_3d(h, order), c, "order {order}");
                    }
                }
            }
        }
    }

    #[test]
    fn round_trip_2d() {
        for order in [1u32, 2, 4, 8] {
            let n: u32 = 1 << order;
            for x in (0..n).step_by(5) {
                for y in (0..n).step_by(7) {
                    let c = [x, y];
                    assert_eq!(hilbert_coords_2d(hilbert_index_2d(c, order), order), c);
                }
            }
        }
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells_3d() {
        // The defining Hilbert property: cells with consecutive indices are
        // neighbors (Manhattan distance exactly 1).
        let order = 3;
        let total = 1u64 << (3 * order);
        for i in 0..total - 1 {
            let a = hilbert_coords_3d(i, order);
            let b = hilbert_coords_3d(i + 1, order);
            let dist: u32 = a.iter().zip(b.iter()).map(|(&p, &q)| p.abs_diff(q)).sum();
            assert_eq!(dist, 1, "indices {i},{} map to {a:?},{b:?}", i + 1);
        }
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells_2d() {
        let order = 4;
        let total = 1u64 << (2 * order);
        for i in 0..total - 1 {
            let a = hilbert_coords_2d(i, order);
            let b = hilbert_coords_2d(i + 1, order);
            let dist: u32 = a.iter().zip(b.iter()).map(|(&p, &q)| p.abs_diff(q)).sum();
            assert_eq!(dist, 1);
        }
    }

    #[test]
    fn indices_cover_full_range() {
        let order = 2;
        let total = 1u64 << (3 * order);
        let mut seen = vec![false; total as usize];
        let n = 1u32 << order;
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    seen[hilbert_index_3d([x, y, z], order) as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn order_zero_rejected() {
        let _ = hilbert_index_3d([0, 0, 0], 0);
    }
}
