//! # scout-geometry
//!
//! Geometry substrate for the SCOUT reproduction: 3-D vectors, axis-aligned
//! boxes, the shape primitives spatial datasets are modeled with, exact
//! intersection predicates, query regions, uniform grids for grid hashing,
//! and Hilbert/Morton space-filling curves.
//!
//! All coordinates are `f64` micrometers, matching the units of the paper's
//! evaluation (query volumes in µm³, gap distances in µm).

pub mod aabb;
pub mod dispatch;
pub mod grid;
pub mod hilbert;
pub mod intersect;
pub mod morton;
pub mod object;
pub mod region;
pub mod shapes;
pub mod soa;
pub mod vec3;

pub use aabb::Aabb;
pub use dispatch::{cpu_tier, CpuTier};
pub use grid::{CellId, UniformGrid};
pub use object::{ObjectAdjacency, ObjectId, SpatialObject, StructureId};
pub use region::{Aspect, QueryRegion};
pub use shapes::{Cylinder, Segment, Shape, Simplification, Simplified, Sphere, Triangle};
pub use soa::AabbSoA;
pub use vec3::Vec3;
