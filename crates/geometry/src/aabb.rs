//! Axis-aligned bounding boxes.

use crate::vec3::Vec3;

/// An axis-aligned bounding box, stored as inclusive min/max corners.
///
/// An `Aabb` with any `min` component strictly greater than the matching
/// `max` component is *empty*; [`Aabb::EMPTY`] is the canonical empty box
/// (useful as the identity for [`Aabb::union`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box: the identity element of [`Aabb::union`].
    pub const EMPTY: Aabb =
        Aabb { min: Vec3::splat(f64::INFINITY), max: Vec3::splat(f64::NEG_INFINITY) };

    /// Creates a box from min/max corners.
    ///
    /// Debug-asserts that the box is well formed (min ≤ max per axis).
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Aabb {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "malformed Aabb: min {min:?} max {max:?}"
        );
        Aabb { min, max }
    }

    /// Box around a single point.
    #[inline]
    pub fn from_point(p: Vec3) -> Aabb {
        Aabb { min: p, max: p }
    }

    /// Smallest box containing both points (in any order).
    #[inline]
    pub fn from_corners(a: Vec3, b: Vec3) -> Aabb {
        Aabb { min: a.min(b), max: a.max(b) }
    }

    /// Box centered at `center` with full side lengths `extent`.
    #[inline]
    pub fn from_center_extent(center: Vec3, extent: Vec3) -> Aabb {
        let half = extent * 0.5;
        Aabb { min: center - half, max: center + half }
    }

    /// Smallest box containing every point in the iterator; `EMPTY` if none.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Aabb {
        points.into_iter().fold(Aabb::EMPTY, |acc, p| acc.union(&Aabb::from_point(p)))
    }

    /// True when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Center point. Meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Full side lengths per axis (zero-clamped).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        (self.max - self.min).max(Vec3::ZERO)
    }

    /// Volume; zero for empty or degenerate boxes.
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Surface area; zero for empty boxes.
    #[inline]
    pub fn surface_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when `other` lies entirely inside `self`.
    ///
    /// Every box (including `self`) contains the empty box.
    #[inline]
    pub fn contains_aabb(&self, other: &Aabb) -> bool {
        if other.is_empty() {
            return true;
        }
        self.contains_point(other.min) && self.contains_point(other.max)
    }

    /// True when the boxes share at least one point (boundary touching counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// The intersection box; `EMPTY` when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Aabb) -> Aabb {
        if !self.intersects(other) {
            return Aabb::EMPTY;
        }
        Aabb { min: self.min.max(other.min), max: self.max.min(other.max) }
    }

    /// Smallest box containing both.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Box grown by `margin` on every side (negative shrinks; may empty).
    #[inline]
    pub fn expanded(&self, margin: f64) -> Aabb {
        Aabb { min: self.min - Vec3::splat(margin), max: self.max + Vec3::splat(margin) }
    }

    /// Box translated by `delta`.
    #[inline]
    pub fn translated(&self, delta: Vec3) -> Aabb {
        Aabb { min: self.min + delta, max: self.max + delta }
    }

    /// The closest point inside the box to `p` (equals `p` when inside).
    #[inline]
    pub fn closest_point(&self, p: Vec3) -> Vec3 {
        p.clamp(self.min, self.max)
    }

    /// Squared distance from `p` to the box (zero when inside).
    #[inline]
    pub fn distance_sq_to_point(&self, p: Vec3) -> f64 {
        self.closest_point(p).distance_sq(p)
    }

    /// Minimum distance between two boxes (zero when intersecting).
    pub fn distance_to_aabb(&self, other: &Aabb) -> f64 {
        let dx = (other.min.x - self.max.x).max(self.min.x - other.max.x).max(0.0);
        let dy = (other.min.y - self.max.y).max(self.min.y - other.max.y).max(0.0);
        let dz = (other.min.z - self.max.z).max(self.min.z - other.max.z).max(0.0);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// The eight corner points (garbage for empty boxes).
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn empty_properties() {
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.volume(), 0.0);
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
        assert!(!Aabb::EMPTY.intersects(&unit()));
        assert!(unit().contains_aabb(&Aabb::EMPTY));
    }

    #[test]
    fn union_identity_is_empty() {
        let b = unit();
        assert_eq!(b.union(&Aabb::EMPTY), b);
        assert_eq!(Aabb::EMPTY.union(&b), b);
    }

    #[test]
    fn volume_and_surface() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
    }

    #[test]
    fn contains_and_intersects() {
        let b = unit();
        assert!(b.contains_point(Vec3::splat(0.5)));
        assert!(b.contains_point(Vec3::ZERO)); // boundary inclusive
        assert!(!b.contains_point(Vec3::new(1.1, 0.5, 0.5)));

        let other = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
        assert!(b.intersects(&other));
        assert!(!b.contains_aabb(&other));
        assert!(b.contains_aabb(&Aabb::new(Vec3::splat(0.2), Vec3::splat(0.8))));

        let disjoint = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(!b.intersects(&disjoint));
        assert!(b.intersection(&disjoint).is_empty());
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = unit();
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5));
        let i = a.intersection(&b);
        assert_eq!(i, Aabb::new(Vec3::splat(0.5), Vec3::splat(1.0)));
    }

    #[test]
    fn from_center_extent_round_trips() {
        let b = Aabb::from_center_extent(Vec3::new(1.0, 2.0, 3.0), Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn closest_point_and_distance() {
        let b = unit();
        assert_eq!(b.closest_point(Vec3::splat(0.5)), Vec3::splat(0.5));
        assert_eq!(b.closest_point(Vec3::new(2.0, 0.5, 0.5)), Vec3::new(1.0, 0.5, 0.5));
        assert!((b.distance_sq_to_point(Vec3::new(2.0, 0.5, 0.5)) - 1.0).abs() < 1e-12);

        let far = Aabb::new(Vec3::new(3.0, 0.0, 0.0), Vec3::new(4.0, 1.0, 1.0));
        assert!((b.distance_to_aabb(&far) - 2.0).abs() < 1e-12);
        assert_eq!(b.distance_to_aabb(&unit()), 0.0);
    }

    #[test]
    fn corners_are_contained() {
        let b = Aabb::new(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(1.0, 1.0, 5.0));
        for c in b.corners() {
            assert!(b.contains_point(c));
        }
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [Vec3::new(0.0, 5.0, -1.0), Vec3::new(2.0, -3.0, 4.0), Vec3::new(1.0, 1.0, 1.0)];
        let b = Aabb::from_points(pts);
        for p in pts {
            assert!(b.contains_point(p));
        }
        assert_eq!(b.min, Vec3::new(0.0, -3.0, -1.0));
        assert_eq!(b.max, Vec3::new(2.0, 5.0, 4.0));
    }
}
