//! Intersection predicates between shapes and axis-aligned boxes.
//!
//! These are the predicates range queries rely on: given a query region
//! (an [`Aabb`]), decide which objects belong to the result. Segment and
//! capsule tests are exact; the triangle test uses the standard
//! separating-axis theorem (SAT) with 13 axes.

use crate::aabb::Aabb;
use crate::shapes::{Segment, Shape, Sphere, Triangle};
use crate::vec3::Vec3;

/// Clips the segment's parameter interval to the box using the slab method.
///
/// Returns `Some((t_enter, t_exit))` with `0 ≤ t_enter ≤ t_exit ≤ 1` when the
/// segment intersects the box, `None` otherwise. A segment fully inside
/// yields `(0, 1)`.
pub fn clip_segment_to_aabb(seg: &Segment, aabb: &Aabb) -> Option<(f64, f64)> {
    if aabb.is_empty() {
        return None;
    }
    let d = seg.direction();
    let mut t0: f64 = 0.0;
    let mut t1: f64 = 1.0;
    for axis in 0..3 {
        let (o, dir, lo, hi) = (seg.a[axis], d[axis], aabb.min[axis], aabb.max[axis]);
        if dir.abs() < f64::EPSILON {
            // Parallel to the slab: must start inside it.
            if o < lo || o > hi {
                return None;
            }
        } else {
            let inv = 1.0 / dir;
            let (mut near, mut far) = ((lo - o) * inv, (hi - o) * inv);
            if near > far {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return None;
            }
        }
    }
    Some((t0, t1))
}

/// True when the segment intersects the box (touching counts).
#[inline]
pub fn segment_intersects_aabb(seg: &Segment, aabb: &Aabb) -> bool {
    clip_segment_to_aabb(seg, aabb).is_some()
}

/// Distance from a segment to a box (zero when they intersect).
///
/// Computed by sampling-free convex optimization on the segment parameter:
/// `f(t) = distance(seg.at(t), box)²` is convex piecewise-quadratic, so
/// ternary search converges; we use a fixed iteration count that brings the
/// parameter error below 1e-9 of the segment length.
pub fn segment_aabb_distance(seg: &Segment, aabb: &Aabb) -> f64 {
    if segment_intersects_aabb(seg, aabb) {
        return 0.0;
    }
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    // 60 iterations of ternary search: interval shrinks by (2/3)^60 ≈ 3e-11.
    for _ in 0..60 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        let d1 = aabb.distance_sq_to_point(seg.at(m1));
        let d2 = aabb.distance_sq_to_point(seg.at(m2));
        if d1 < d2 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    aabb.distance_sq_to_point(seg.at((lo + hi) * 0.5)).sqrt()
}

/// True when a capsule (segment with radius) intersects the box — the exact
/// test for the paper's cylinders treated as capsules.
#[inline]
pub fn capsule_intersects_aabb(seg: &Segment, radius: f64, aabb: &Aabb) -> bool {
    segment_aabb_distance(seg, aabb) <= radius
}

/// True when a sphere intersects the box.
#[inline]
pub fn sphere_intersects_aabb(s: &Sphere, aabb: &Aabb) -> bool {
    aabb.distance_sq_to_point(s.center) <= s.radius * s.radius
}

/// Separating-axis test between a triangle and a box (13 axes: 3 box face
/// normals, 1 triangle normal, 9 edge cross products).
pub fn triangle_intersects_aabb(tri: &Triangle, aabb: &Aabb) -> bool {
    if aabb.is_empty() {
        return false;
    }
    let c = aabb.center();
    let h = aabb.extent() * 0.5;
    // Translate triangle so the box is centered at the origin.
    let v0 = tri.a - c;
    let v1 = tri.b - c;
    let v2 = tri.c - c;
    let e0 = v1 - v0;
    let e1 = v2 - v1;
    let e2 = v0 - v2;

    let axis_test = |axis: Vec3| -> bool {
        // Degenerate axes (cross of parallel edges) separate nothing.
        if axis.norm_sq() < 1e-24 {
            return true;
        }
        let p0 = v0.dot(axis);
        let p1 = v1.dot(axis);
        let p2 = v2.dot(axis);
        let r = h.x * axis.x.abs() + h.y * axis.y.abs() + h.z * axis.z.abs();
        let lo = p0.min(p1).min(p2);
        let hi = p0.max(p1).max(p2);
        !(lo > r || hi < -r)
    };

    // 1. Box face normals = triangle AABB vs box.
    if !tri.aabb().intersects(aabb) {
        return false;
    }
    // 2. Triangle normal.
    if !axis_test(e0.cross(e1)) {
        return false;
    }
    // 3. Nine edge cross products.
    let axes = [Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 0.0, 1.0)];
    for e in [e0, e1, e2] {
        for u in axes {
            if !axis_test(u.cross(e)) {
                return false;
            }
        }
    }
    true
}

/// True when a shape intersects the box.
///
/// Point/segment/sphere/triangle tests are exact; the cylinder test is the
/// exact capsule test on its axis with the maximum radius (conservative for
/// strongly tapered cylinders).
pub fn shape_intersects_aabb(shape: &Shape, aabb: &Aabb) -> bool {
    match shape {
        Shape::Point(p) => aabb.contains_point(*p),
        Shape::Segment(s) => segment_intersects_aabb(s, aabb),
        Shape::Cylinder(c) => capsule_intersects_aabb(&c.axis(), c.max_radius(), aabb),
        Shape::Triangle(t) => triangle_intersects_aabb(t, aabb),
        Shape::Sphere(s) => sphere_intersects_aabb(s, aabb),
    }
}

/// True when the shape lies entirely inside the box (conservative: uses the
/// shape's bounding box).
#[inline]
pub fn shape_inside_aabb(shape: &Shape, aabb: &Aabb) -> bool {
    aabb.contains_aabb(&shape.aabb())
}

/// True when the cylinder's *axis* crosses the box boundary, i.e. the shape
/// both intersects the region and extends beyond it. This is how exit/entry
/// objects are detected on the simplified geometry.
pub fn segment_crosses_boundary(seg: &Segment, aabb: &Aabb) -> bool {
    let inside_a = aabb.contains_point(seg.a);
    let inside_b = aabb.contains_point(seg.b);
    if inside_a != inside_b {
        return true;
    }
    if inside_a && inside_b {
        return false;
    }
    // Both endpoints outside: crosses only if it passes through the box.
    segment_intersects_aabb(seg, aabb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::Cylinder;

    fn unit() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn clip_inside_segment() {
        let s = Segment::new(Vec3::splat(0.2), Vec3::splat(0.8));
        assert_eq!(clip_segment_to_aabb(&s, &unit()), Some((0.0, 1.0)));
    }

    #[test]
    fn clip_crossing_segment() {
        let s = Segment::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(2.0, 0.5, 0.5));
        let (t0, t1) = clip_segment_to_aabb(&s, &unit()).unwrap();
        assert!((s.at(t0).x - 0.0).abs() < 1e-12);
        assert!((s.at(t1).x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_missing_segment() {
        let s = Segment::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::new(2.0, 2.0, 0.5));
        assert!(clip_segment_to_aabb(&s, &unit()).is_none());
    }

    #[test]
    fn clip_parallel_slab_outside() {
        // Parallel to x slab, starting outside it.
        let s = Segment::new(Vec3::new(2.0, 0.2, 0.2), Vec3::new(2.0, 0.8, 0.8));
        assert!(clip_segment_to_aabb(&s, &unit()).is_none());
    }

    #[test]
    fn segment_distance_basics() {
        let s = Segment::new(Vec3::new(3.0, 0.5, 0.5), Vec3::new(4.0, 0.5, 0.5));
        assert!((segment_aabb_distance(&s, &unit()) - 2.0).abs() < 1e-6);
        let inside = Segment::new(Vec3::splat(0.4), Vec3::splat(0.6));
        assert_eq!(segment_aabb_distance(&inside, &unit()), 0.0);
    }

    #[test]
    fn segment_distance_diagonal() {
        // Closest approach at a corner.
        let s = Segment::new(Vec3::new(2.0, 2.0, 0.5), Vec3::new(2.0, 2.0, 0.6));
        let expect = (1.0_f64 + 1.0).sqrt();
        assert!((segment_aabb_distance(&s, &unit()) - expect).abs() < 1e-6);
    }

    #[test]
    fn capsule_test_uses_radius() {
        let s = Segment::new(Vec3::new(1.5, 0.5, 0.5), Vec3::new(2.0, 0.5, 0.5));
        assert!(!capsule_intersects_aabb(&s, 0.4, &unit()));
        assert!(capsule_intersects_aabb(&s, 0.6, &unit()));
    }

    #[test]
    fn sphere_tests() {
        assert!(sphere_intersects_aabb(&Sphere::new(Vec3::new(1.5, 0.5, 0.5), 0.6), &unit()));
        assert!(!sphere_intersects_aabb(&Sphere::new(Vec3::new(1.5, 0.5, 0.5), 0.4), &unit()));
        assert!(sphere_intersects_aabb(&Sphere::new(Vec3::splat(0.5), 0.1), &unit()));
    }

    #[test]
    fn triangle_plane_separation() {
        // Triangle whose plane misses the box entirely.
        let t = Triangle::new(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(1.0, 0.0, 2.0),
            Vec3::new(0.0, 1.0, 2.0),
        );
        assert!(!triangle_intersects_aabb(&t, &unit()));
        // Same triangle dropped into the box.
        let t2 = Triangle::new(
            Vec3::new(0.0, 0.0, 0.5),
            Vec3::new(1.0, 0.0, 0.5),
            Vec3::new(0.0, 1.0, 0.5),
        );
        assert!(triangle_intersects_aabb(&t2, &unit()));
    }

    #[test]
    fn triangle_edge_axis_separation() {
        // AABBs overlap but the triangle passes diagonally beside the box:
        // only an edge-cross axis separates them.
        // The edge line x+y = 2.2 passes outside the box corner (1,1); the
        // triangle AABB still overlaps the box, so only the edge-cross axis
        // separates them.
        let t = Triangle::new(
            Vec3::new(2.7, -0.5, 0.5),
            Vec3::new(-0.5, 2.7, 0.5),
            Vec3::new(2.7, -0.5, 0.6),
        );
        let near = Triangle::new(
            Vec3::new(1.0, -0.1, 0.5),
            Vec3::new(-0.1, 1.0, 0.5),
            Vec3::new(1.0, -0.1, 0.6),
        );
        assert!(triangle_intersects_aabb(&near, &unit()));
        assert!(!triangle_intersects_aabb(&t, &unit()));
    }

    #[test]
    fn degenerate_triangle_does_not_panic() {
        let t = Triangle::new(Vec3::splat(0.5), Vec3::splat(0.5), Vec3::splat(0.5));
        assert!(triangle_intersects_aabb(&t, &unit()));
        let out = Triangle::new(Vec3::splat(2.0), Vec3::splat(2.0), Vec3::splat(2.0));
        assert!(!triangle_intersects_aabb(&out, &unit()));
    }

    #[test]
    fn crosses_boundary_cases() {
        let b = unit();
        let crossing = Segment::new(Vec3::splat(0.5), Vec3::splat(1.5));
        assert!(segment_crosses_boundary(&crossing, &b));
        let inside = Segment::new(Vec3::splat(0.2), Vec3::splat(0.8));
        assert!(!segment_crosses_boundary(&inside, &b));
        let through = Segment::new(Vec3::new(-1.0, 0.5, 0.5), Vec3::new(2.0, 0.5, 0.5));
        assert!(segment_crosses_boundary(&through, &b));
        let outside = Segment::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(!segment_crosses_boundary(&outside, &b));
    }

    #[test]
    fn shape_dispatch() {
        let b = unit();
        assert!(shape_intersects_aabb(&Shape::Point(Vec3::splat(0.5)), &b));
        assert!(!shape_intersects_aabb(&Shape::Point(Vec3::splat(1.5)), &b));
        let cyl = Shape::Cylinder(Cylinder::new(
            Vec3::new(1.2, 0.5, 0.5),
            Vec3::new(2.0, 0.5, 0.5),
            0.3,
            0.3,
        ));
        assert!(shape_intersects_aabb(&cyl, &b));
        assert!(shape_inside_aabb(&Shape::Point(Vec3::splat(0.5)), &b));
        assert!(!shape_inside_aabb(&cyl, &b));
    }
}
