//! # scout-baselines
//!
//! The prefetching baselines SCOUT is evaluated against (§2, §3.3):
//! trajectory extrapolation (straight line, polynomial, velocity, EWMA),
//! static methods (Hilbert-Prefetch, Layered), and — beyond the paper's
//! roster — the pure page-transition history method of the learned
//! prefetching literature ([`history`]). The no-prefetching baseline lives
//! in `scout_sim::NoPrefetch`.

pub mod common;
pub mod extrapolation;
pub mod static_methods;

/// History-based prefetching (the SeLeP / Predictive-Prefetching-Engine
/// lineage): where the §2.2 extrapolation methods replay query
/// *positions*, this replays page *transitions*. Implemented in
/// `scout-predict` (it shares the model with the SCOUT hybrid) and
/// re-exported here so comparison rosters can pull every non-SCOUT method
/// from one crate.
pub mod history {
    pub use scout_predict::{MarkovConfig, MarkovPrefetcher, MarkovPrefetcherConfig};
}

pub use extrapolation::{Ewma, Polynomial, StraightLine, Velocity};
pub use history::MarkovPrefetcher;
pub use static_methods::{HilbertPrefetch, Layered};
