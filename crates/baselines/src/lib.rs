//! # scout-baselines
//!
//! The prefetching baselines SCOUT is evaluated against (§2, §3.3):
//! trajectory extrapolation (straight line, polynomial, velocity, EWMA) and
//! static methods (Hilbert-Prefetch, Layered). The no-prefetching baseline
//! lives in `scout_sim::NoPrefetch`.

pub mod common;
pub mod extrapolation;
pub mod static_methods;

pub use extrapolation::{Ewma, Polynomial, StraightLine, Velocity};
pub use static_methods::{HilbertPrefetch, Layered};
