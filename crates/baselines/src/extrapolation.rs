//! Trajectory-extrapolation prefetchers (§2.2).
//!
//! All of them interpolate/extrapolate the positions of past queries:
//! straight-line from the last two [26], polynomial of configurable degree
//! over degree+1 recent positions [4, 5], velocity-scaled motion [30], and
//! EWMA-weighted movement vectors [7].

use crate::common::{plan_at_predicted_center, CenterHistory};
use scout_geometry::{QueryRegion, Vec3};
use scout_index::QueryResult;
use scout_sim::{CpuUnits, PredictionStats, PrefetchPlan, Prefetcher, SimContext};

/// Straight-line extrapolation from the last two query positions [26]:
/// `ĉ = cₙ + (cₙ − cₙ₋₁)`.
#[derive(Debug, Clone)]
pub struct StraightLine {
    history: CenterHistory,
}

impl Default for StraightLine {
    fn default() -> Self {
        StraightLine { history: CenterHistory::new(2) }
    }
}

impl StraightLine {
    /// Creates the prefetcher.
    pub fn new() -> StraightLine {
        StraightLine::default()
    }
}

impl Prefetcher for StraightLine {
    fn name(&self) -> String {
        "Straight Line".to_string()
    }

    fn observe(
        &mut self,
        _ctx: &SimContext<'_>,
        region: &QueryRegion,
        _result: &QueryResult,
    ) -> PredictionStats {
        self.history.push(region);
        PredictionStats {
            cpu: CpuUnits { extra_us: 0.5, ..Default::default() },
            ..Default::default()
        }
    }

    fn plan(&mut self, _ctx: &SimContext<'_>) -> PrefetchPlan {
        match (self.history.last_region(), self.history.last_delta()) {
            (Some(last), Some(delta)) => plan_at_predicted_center(last, last.center() + delta),
            _ => PrefetchPlan::empty(),
        }
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

/// Polynomial extrapolation [4, 5]: fits a degree-`d` polynomial per
/// coordinate through the last `d + 1` query positions (§3.3: "using as
/// many recent query locations to interpolate as their degree plus one")
/// and evaluates it one step ahead via Lagrange interpolation on the
/// uniform grid t = 0, 1, …, d.
#[derive(Debug, Clone)]
pub struct Polynomial {
    degree: usize,
    history: CenterHistory,
}

impl Polynomial {
    /// Polynomial prefetcher of the given degree (≥ 1).
    pub fn new(degree: usize) -> Polynomial {
        assert!(degree >= 1, "polynomial degree must be >= 1");
        Polynomial { degree, history: CenterHistory::new(degree + 1) }
    }

    /// Lagrange extrapolation of points y₀…y_d (at t = 0…d) to t = d + 1.
    fn extrapolate(points: &[Vec3]) -> Vec3 {
        let k = points.len();
        let t = k as f64; // evaluate one step past the last point
        let mut out = Vec3::ZERO;
        for (i, &p) in points.iter().enumerate() {
            let mut w = 1.0;
            for j in 0..k {
                if j != i {
                    w *= (t - j as f64) / (i as f64 - j as f64);
                }
            }
            out += p * w;
        }
        out
    }
}

impl Prefetcher for Polynomial {
    fn name(&self) -> String {
        format!("Polynomial Degree {}", self.degree)
    }

    fn observe(
        &mut self,
        _ctx: &SimContext<'_>,
        region: &QueryRegion,
        _result: &QueryResult,
    ) -> PredictionStats {
        self.history.push(region);
        PredictionStats {
            cpu: CpuUnits { extra_us: 1.0, ..Default::default() },
            ..Default::default()
        }
    }

    fn plan(&mut self, _ctx: &SimContext<'_>) -> PrefetchPlan {
        let centers = self.history.centers();
        let Some(last) = self.history.last_region() else {
            return PrefetchPlan::empty();
        };
        if centers.len() < 2 {
            return PrefetchPlan::empty();
        }
        // Use up to degree+1 most recent points.
        let take = (self.degree + 1).min(centers.len());
        let predicted = Self::extrapolate(&centers[centers.len() - take..]);
        plan_at_predicted_center(last, predicted)
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

/// Velocity-based motion prediction [30]: direction from the last movement,
/// magnitude from the mean speed over recent movements.
#[derive(Debug, Clone)]
pub struct Velocity {
    history: CenterHistory,
}

impl Default for Velocity {
    fn default() -> Self {
        Velocity { history: CenterHistory::new(4) }
    }
}

impl Velocity {
    /// Creates the prefetcher.
    pub fn new() -> Velocity {
        Velocity::default()
    }
}

impl Prefetcher for Velocity {
    fn name(&self) -> String {
        "Velocity".to_string()
    }

    fn observe(
        &mut self,
        _ctx: &SimContext<'_>,
        region: &QueryRegion,
        _result: &QueryResult,
    ) -> PredictionStats {
        self.history.push(region);
        PredictionStats {
            cpu: CpuUnits { extra_us: 0.8, ..Default::default() },
            ..Default::default()
        }
    }

    fn plan(&mut self, _ctx: &SimContext<'_>) -> PrefetchPlan {
        let centers = self.history.centers();
        let Some(last) = self.history.last_region() else {
            return PrefetchPlan::empty();
        };
        if centers.len() < 2 {
            return PrefetchPlan::empty();
        }
        let speeds: Vec<f64> = centers.windows(2).map(|w| w[0].distance(w[1])).collect();
        let mean_speed = speeds.iter().sum::<f64>() / speeds.len() as f64;
        let dir = (centers[centers.len() - 1] - centers[centers.len() - 2]).normalized_or_x();
        plan_at_predicted_center(last, last.center() + dir * mean_speed)
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

/// EWMA movement prediction [7]: "the last query is weighted with λ, the
/// second to last with (1 − λ)·λ, and so on" (§2.2) — the standard
/// recursion `v ← λ·Δ + (1 − λ)·v`.
#[derive(Debug, Clone)]
pub struct Ewma {
    lambda: f64,
    history: CenterHistory,
    velocity: Option<Vec3>,
}

impl Ewma {
    /// EWMA with weight `lambda ∈ (0, 1]`; the paper's best configuration
    /// is λ = 0.3 (§3.3).
    pub fn new(lambda: f64) -> Ewma {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1], got {lambda}");
        Ewma { lambda, history: CenterHistory::new(2), velocity: None }
    }

    /// The paper's best configuration: λ = 0.3.
    pub fn paper_best() -> Ewma {
        Ewma::new(0.3)
    }
}

impl Prefetcher for Ewma {
    fn name(&self) -> String {
        format!("EWMA (λ = {})", self.lambda)
    }

    fn observe(
        &mut self,
        _ctx: &SimContext<'_>,
        region: &QueryRegion,
        _result: &QueryResult,
    ) -> PredictionStats {
        self.history.push(region);
        if let Some(delta) = self.history.last_delta() {
            self.velocity = Some(match self.velocity {
                Some(v) => delta * self.lambda + v * (1.0 - self.lambda),
                None => delta,
            });
        }
        PredictionStats {
            cpu: CpuUnits { extra_us: 0.6, ..Default::default() },
            ..Default::default()
        }
    }

    fn plan(&mut self, _ctx: &SimContext<'_>) -> PrefetchPlan {
        match (self.history.last_region(), self.velocity) {
            (Some(last), Some(v)) => plan_at_predicted_center(last, last.center() + v),
            _ => PrefetchPlan::empty(),
        }
    }

    fn reset(&mut self) {
        self.history.clear();
        self.velocity = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_geometry::{Aabb, Aspect, ObjectId, Shape, SpatialObject, StructureId};
    use scout_index::RTree;

    fn ctx_fixture() -> (Vec<SpatialObject>, RTree) {
        let objs: Vec<SpatialObject> = (0..100)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(i),
                    StructureId(0),
                    Shape::Point(Vec3::new(i as f64, 0.0, 0.0)),
                )
            })
            .collect();
        let tree = RTree::bulk_load_with_capacity(&objs, 8);
        (objs, tree)
    }

    fn observe_centers(p: &mut dyn Prefetcher, centers: &[Vec3]) -> Option<Vec3> {
        let (objs, tree) = ctx_fixture();
        let ctx = SimContext::new(&objs, &tree, Aabb::new(Vec3::ZERO, Vec3::splat(100.0)));
        let empty = QueryResult::default();
        for &c in centers {
            let r = QueryRegion::new(c, 1000.0, Aspect::Cube);
            p.observe(&ctx, &r, &empty);
        }
        match p.plan(&ctx).requests.first() {
            Some(scout_sim::PrefetchRequest::Region(r)) => Some(r.center()),
            _ => None,
        }
    }

    #[test]
    fn straight_line_continues_linear_motion() {
        let mut p = StraightLine::new();
        let got =
            observe_centers(&mut p, &[Vec3::new(0.0, 0.0, 0.0), Vec3::new(5.0, 0.0, 0.0)]).unwrap();
        assert!((got - Vec3::new(10.0, 0.0, 0.0)).norm() < 1e-9);
    }

    #[test]
    fn straight_line_needs_two_points() {
        let mut p = StraightLine::new();
        assert!(observe_centers(&mut p, &[Vec3::ZERO]).is_none());
    }

    #[test]
    fn polynomial_degree2_follows_parabola() {
        // Centers on y = x² with x = 0,1,2 -> next should be (3, 9).
        let mut p = Polynomial::new(2);
        let got = observe_centers(
            &mut p,
            &[Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 1.0, 0.0), Vec3::new(2.0, 4.0, 0.0)],
        )
        .unwrap();
        assert!((got - Vec3::new(3.0, 9.0, 0.0)).norm() < 1e-9, "got {got:?}");
    }

    #[test]
    fn polynomial_exact_on_linear_motion_any_degree() {
        for degree in [1usize, 2, 3] {
            let mut p = Polynomial::new(degree);
            let pts: Vec<Vec3> =
                (0..=degree).map(|i| Vec3::new(i as f64 * 2.0, 1.0, 0.0)).collect();
            let got = observe_centers(&mut p, &pts).unwrap();
            let expect = Vec3::new((degree as f64 + 1.0) * 2.0, 1.0, 0.0);
            assert!((got - expect).norm() < 1e-9, "degree {degree}: {got:?}");
        }
    }

    #[test]
    fn ewma_blends_velocities() {
        // Movement turns: EWMA(0.5) should predict between old and new dirs.
        let mut p = Ewma::new(0.5);
        let got = observe_centers(
            &mut p,
            &[
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(10.0, 0.0, 0.0),  // v = (10,0,0)
                Vec3::new(10.0, 10.0, 0.0), // delta (0,10,0); v = (5,5,0)
            ],
        )
        .unwrap();
        assert!((got - Vec3::new(15.0, 15.0, 0.0)).norm() < 1e-9, "got {got:?}");
    }

    #[test]
    fn ewma_lambda_one_equals_straight_line() {
        let pts = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(3.0, 1.0, 0.0), Vec3::new(9.0, 5.0, 0.0)];
        let mut e = Ewma::new(1.0);
        let mut s = StraightLine::new();
        let ge = observe_centers(&mut e, &pts).unwrap();
        let gs = observe_centers(&mut s, &pts).unwrap();
        assert!((ge - gs).norm() < 1e-9);
    }

    #[test]
    fn velocity_uses_mean_speed() {
        // Steps of length 2 then 4: mean speed 3, direction +x.
        let mut p = Velocity::new();
        let got = observe_centers(
            &mut p,
            &[Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 0.0, 0.0), Vec3::new(6.0, 0.0, 0.0)],
        )
        .unwrap();
        assert!((got - Vec3::new(9.0, 0.0, 0.0)).norm() < 1e-9, "got {got:?}");
    }

    #[test]
    fn reset_clears_state() {
        let mut p = Ewma::paper_best();
        let _ = observe_centers(&mut p, &[Vec3::ZERO, Vec3::ONE]);
        p.reset();
        let (objs, tree) = ctx_fixture();
        let ctx = SimContext::new(&objs, &tree, Aabb::new(Vec3::ZERO, Vec3::splat(100.0)));
        assert!(p.plan(&ctx).requests.is_empty());
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_rejected() {
        let _ = Ewma::new(0.0);
    }
}
