//! Static prefetching methods (§2.1): heuristics that ignore movement
//! history and prefetch around the current location.

use scout_geometry::hilbert::{hilbert_coords_3d, hilbert_index_3d};
use scout_geometry::{QueryRegion, UniformGrid, Vec3};
use scout_index::QueryResult;
use scout_sim::{CpuUnits, PredictionStats, PrefetchPlan, PrefetchRequest, Prefetcher, SimContext};

/// Hilbert-Prefetch [22]: overlays a grid on the dataset, assigns each cell
/// its Hilbert value, and prefetches cells whose values neighbor the value
/// of the current query's cell (alternating +1, −1, +2, −2, …).
#[derive(Debug, Clone)]
pub struct HilbertPrefetch {
    /// Bits per axis of the prefetch grid (cells per axis = 2^order).
    order: u32,
    /// How many Hilbert-adjacent cells to request per window.
    fan: usize,
    last_center: Option<Vec3>,
}

impl HilbertPrefetch {
    /// Hilbert prefetcher with grid `2^order` cells per axis, requesting up
    /// to `fan` neighboring cells.
    pub fn new(order: u32, fan: usize) -> HilbertPrefetch {
        assert!((1..=scout_geometry::hilbert::MAX_ORDER_3D).contains(&order));
        HilbertPrefetch { order, fan, last_center: None }
    }
}

impl Default for HilbertPrefetch {
    /// 32³ cells, 24 neighboring cells per window.
    fn default() -> Self {
        HilbertPrefetch::new(5, 24)
    }
}

impl Prefetcher for HilbertPrefetch {
    fn name(&self) -> String {
        "Hilbert".to_string()
    }

    fn observe(
        &mut self,
        _ctx: &SimContext<'_>,
        region: &QueryRegion,
        _result: &QueryResult,
    ) -> PredictionStats {
        self.last_center = Some(region.center());
        PredictionStats {
            cpu: CpuUnits { extra_us: 0.5, ..Default::default() },
            ..Default::default()
        }
    }

    fn plan(&mut self, ctx: &SimContext<'_>) -> PrefetchPlan {
        let Some(center) = self.last_center else {
            return PrefetchPlan::empty();
        };
        let cells_per_axis = 1u32 << self.order;
        let grid = UniformGrid::new(ctx.bounds, [cells_per_axis; 3]);
        let coords = grid.coords_of(center);
        let h = hilbert_index_3d(coords, self.order);
        let max = 1u64 << (3 * self.order);

        let mut requests = Vec::with_capacity(self.fan);
        // Alternate +1, -1, +2, -2, ... in Hilbert value.
        let mut offsets: Vec<i64> = Vec::with_capacity(self.fan);
        let mut k = 1i64;
        while offsets.len() < self.fan {
            offsets.push(k);
            if offsets.len() < self.fan {
                offsets.push(-k);
            }
            k += 1;
        }
        for off in offsets {
            let hv = h as i64 + off;
            if hv < 0 || hv as u64 >= max {
                continue;
            }
            let c = hilbert_coords_3d(hv as u64, self.order);
            let cell = grid.cell_aabb(c);
            requests.push(PrefetchRequest::Region(QueryRegion::from_aabb(cell)));
        }
        PrefetchPlan { requests }
    }

    fn reset(&mut self) {
        self.last_center = None;
    }
}

/// Layered prefetching [31]: segments space into a grid and prefetches all
/// 26 cells surrounding the current one (nearest shells first).
#[derive(Debug, Clone)]
pub struct Layered {
    /// Cells per axis of the prefetch grid.
    cells_per_axis: u32,
    last_center: Option<Vec3>,
}

impl Layered {
    /// Layered prefetcher over a `cells_per_axis³` grid.
    pub fn new(cells_per_axis: u32) -> Layered {
        assert!(cells_per_axis >= 2);
        Layered { cells_per_axis, last_center: None }
    }
}

impl Default for Layered {
    fn default() -> Self {
        Layered::new(32)
    }
}

impl Prefetcher for Layered {
    fn name(&self) -> String {
        "Layered".to_string()
    }

    fn observe(
        &mut self,
        _ctx: &SimContext<'_>,
        region: &QueryRegion,
        _result: &QueryResult,
    ) -> PredictionStats {
        self.last_center = Some(region.center());
        PredictionStats {
            cpu: CpuUnits { extra_us: 0.3, ..Default::default() },
            ..Default::default()
        }
    }

    fn plan(&mut self, ctx: &SimContext<'_>) -> PrefetchPlan {
        let Some(center) = self.last_center else {
            return PrefetchPlan::empty();
        };
        let grid = UniformGrid::new(ctx.bounds, [self.cells_per_axis; 3]);
        let c = grid.coords_of(center);
        let mut cells: Vec<[u32; 3]> = Vec::with_capacity(26);
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let n = [c[0] as i64 + dx, c[1] as i64 + dy, c[2] as i64 + dz];
                    if n.iter().all(|&v| v >= 0 && v < self.cells_per_axis as i64) {
                        cells.push([n[0] as u32, n[1] as u32, n[2] as u32]);
                    }
                }
            }
        }
        // Face neighbors before edge/corner neighbors (closer data first).
        cells.sort_by_key(|n| n.iter().zip(c.iter()).map(|(&a, &b)| a.abs_diff(b)).sum::<u32>());
        let requests = cells
            .into_iter()
            .map(|n| PrefetchRequest::Region(QueryRegion::from_aabb(grid.cell_aabb(n))))
            .collect();
        PrefetchPlan { requests }
    }

    fn reset(&mut self) {
        self.last_center = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_geometry::{Aabb, Aspect, ObjectId, Shape, SpatialObject, StructureId};
    use scout_index::RTree;

    fn fixture() -> (Vec<SpatialObject>, RTree) {
        let objs: Vec<SpatialObject> = (0..200)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(i),
                    StructureId(0),
                    Shape::Point(Vec3::new(
                        (i % 10) as f64 * 10.0,
                        ((i / 10) % 10) as f64 * 10.0,
                        (i / 100) as f64 * 10.0,
                    )),
                )
            })
            .collect();
        let tree = RTree::bulk_load_with_capacity(&objs, 8);
        (objs, tree)
    }

    #[test]
    fn hilbert_requests_neighboring_cells() {
        let (objs, tree) = fixture();
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(100.0));
        let ctx = SimContext::new(&objs, &tree, bounds);
        let mut p = HilbertPrefetch::new(3, 8);
        let region = QueryRegion::new(Vec3::splat(50.0), 1000.0, Aspect::Cube);
        p.observe(&ctx, &region, &QueryResult::default());
        let plan = p.plan(&ctx);
        assert!(!plan.requests.is_empty());
        assert!(plan.requests.len() <= 8);
        // All requested cells lie within bounds.
        for r in &plan.requests {
            if let PrefetchRequest::Region(q) = r {
                assert!(bounds.expanded(1e-6).contains_aabb(q.aabb()));
            }
        }
    }

    #[test]
    fn layered_requests_up_to_26_neighbors() {
        let (objs, tree) = fixture();
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(100.0));
        let ctx = SimContext::new(&objs, &tree, bounds);
        let mut p = Layered::new(4);
        let region = QueryRegion::new(Vec3::splat(50.0), 1000.0, Aspect::Cube);
        p.observe(&ctx, &region, &QueryResult::default());
        let plan = p.plan(&ctx);
        assert_eq!(plan.requests.len(), 26);
    }

    #[test]
    fn layered_clips_at_domain_corner() {
        let (objs, tree) = fixture();
        let bounds = Aabb::new(Vec3::ZERO, Vec3::splat(100.0));
        let ctx = SimContext::new(&objs, &tree, bounds);
        let mut p = Layered::new(4);
        let region = QueryRegion::new(Vec3::splat(1.0), 100.0, Aspect::Cube);
        p.observe(&ctx, &region, &QueryResult::default());
        // Corner cell has only 7 neighbors.
        assert_eq!(p.plan(&ctx).requests.len(), 7);
    }

    #[test]
    fn no_observation_no_plan() {
        let (objs, tree) = fixture();
        let ctx = SimContext::new(&objs, &tree, Aabb::new(Vec3::ZERO, Vec3::splat(100.0)));
        assert!(HilbertPrefetch::default().plan(&ctx).requests.is_empty());
        assert!(Layered::default().plan(&ctx).requests.is_empty());
    }
}
