//! Shared machinery for position-history prefetchers.
//!
//! Every §2.2 trajectory-extrapolation method sees only the *positions* of
//! past queries — "current prefetching approaches for spatial data do not
//! perform well, because they only rely on previous query positions" (§1).
//! This module holds that position history and the common plan shape.

use scout_geometry::{QueryRegion, Vec3};
use scout_sim::{PrefetchPlan, PrefetchRequest};

/// Rolling history of query centers (and the latest region geometry).
#[derive(Debug, Clone, Default)]
pub struct CenterHistory {
    centers: Vec<Vec3>,
    last_region: Option<QueryRegion>,
    capacity: usize,
}

impl CenterHistory {
    /// History retaining the last `capacity` centers (≥ 2).
    pub fn new(capacity: usize) -> CenterHistory {
        CenterHistory { centers: Vec::new(), last_region: None, capacity: capacity.max(2) }
    }

    /// Records a query.
    pub fn push(&mut self, region: &QueryRegion) {
        self.centers.push(region.center());
        if self.centers.len() > self.capacity {
            self.centers.remove(0);
        }
        self.last_region = Some(*region);
    }

    /// Recorded centers, oldest first.
    pub fn centers(&self) -> &[Vec3] {
        &self.centers
    }

    /// The most recent query region.
    pub fn last_region(&self) -> Option<&QueryRegion> {
        self.last_region.as_ref()
    }

    /// The latest movement vector (cₙ − cₙ₋₁), if ≥ 2 queries were seen.
    pub fn last_delta(&self) -> Option<Vec3> {
        let n = self.centers.len();
        if n >= 2 {
            Some(self.centers[n - 1] - self.centers[n - 2])
        } else {
            None
        }
    }

    /// Clears the history.
    pub fn clear(&mut self) {
        self.centers.clear();
        self.last_region = None;
    }
}

/// Builds the standard plan for a predicted next-query center: the region
/// at the prediction, with the same volume and aspect as the last query.
/// This is exactly what the §2.2 methods do — they "predict the future
/// query location" and prefetch the anticipated query there; they have no
/// mechanism for spending surplus window budget elsewhere (that mechanism,
/// incremental prefetching, is SCOUT's §5.1 contribution). All
/// extrapolation baselines share this shape, so comparisons are
/// apples-to-apples.
pub fn plan_at_predicted_center(last_region: &QueryRegion, predicted: Vec3) -> PrefetchPlan {
    let delta = predicted - last_region.center();
    let at = last_region.translated(delta);
    PrefetchPlan { requests: vec![PrefetchRequest::Region(at)] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scout_geometry::Aspect;

    fn region(center: Vec3) -> QueryRegion {
        QueryRegion::new(center, 1000.0, Aspect::Cube)
    }

    #[test]
    fn history_caps_and_orders() {
        let mut h = CenterHistory::new(3);
        for i in 0..5 {
            h.push(&region(Vec3::new(i as f64, 0.0, 0.0)));
        }
        assert_eq!(h.centers().len(), 3);
        assert_eq!(h.centers()[0].x, 2.0);
        assert_eq!(h.centers()[2].x, 4.0);
        assert_eq!(h.last_delta().unwrap().x, 1.0);
        h.clear();
        assert!(h.centers().is_empty());
        assert!(h.last_delta().is_none());
    }

    #[test]
    fn plan_translates_and_grows() {
        let last = region(Vec3::ZERO);
        let plan = plan_at_predicted_center(&last, Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(plan.requests.len(), 1);
        match &plan.requests[0] {
            scout_sim::PrefetchRequest::Region(r) => {
                assert_eq!(r.center(), Vec3::new(10.0, 0.0, 0.0));
                assert!((r.volume() - 1000.0).abs() < 1e-6);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }
}
