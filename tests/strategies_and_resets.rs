//! Integration tests of the §5.2 strategy claims and §4.3 reset handling.

use scout::prelude::*;

fn bed(seed: u64) -> TestBed {
    TestBed::new(generate_neurons(&NeuronParams { neuron_count: 60, ..Default::default() }, seed))
}

#[test]
fn deep_prefetching_has_higher_variance_than_broad() {
    // §5.2.1: deep "predicts correctly with a probability 1/|C|" and "the
    // prefetch accuracy varies widely"; §5.2.2: broad's "variation in
    // prediction accuracy decreases".
    let bed = bed(41);
    let params = SequenceParams { length: 15, ..SequenceParams::sensitivity_default() };
    let regions = region_lists(&generate_sequences(&bed.dataset, &params, 8, 42));
    let config = ExecutorConfig::default();

    let mut deep = Scout::new(ScoutConfig { strategy: Strategy::Deep, ..Default::default() });
    let d = evaluate(&bed.ctx_rtree(), &mut deep, &regions, &config);
    let mut broad = Scout::new(ScoutConfig { strategy: Strategy::Broad, ..Default::default() });
    let b = evaluate(&bed.ctx_rtree(), &mut broad, &regions, &config);

    assert!(
        b.hit_rate >= d.hit_rate - 0.05,
        "broad {:.3} should not trail deep {:.3} by much",
        b.hit_rate,
        d.hit_rate
    );
    // Variance claim (allow equality at tiny scales, but deep must not be
    // *less* spread by a wide margin).
    assert!(
        d.hit_rate_std >= b.hit_rate_std * 0.5,
        "deep std {:.4} vs broad std {:.4}",
        d.hit_rate_std,
        b.hit_rate_std
    );
}

#[test]
fn scout_survives_user_resets() {
    // §4.3: "In case of a reset ... the candidate set again contains all
    // spatial structures from the last range query result." SCOUT must
    // keep working (degraded, not broken) when the user keeps abandoning
    // structures.
    let bed = bed(43);
    let steady = SequenceParams { length: 20, ..SequenceParams::sensitivity_default() };
    let churning = SequenceParams { reset_prob: 0.25, ..steady };

    let steady_regions = region_lists(&generate_sequences(&bed.dataset, &steady, 4, 44));
    let churn_regions = region_lists(&generate_sequences(&bed.dataset, &churning, 4, 44));
    let config = ExecutorConfig::default();

    let mut scout = Scout::with_defaults();
    let s = evaluate(&bed.ctx_rtree(), &mut scout, &steady_regions, &config);
    let mut scout2 = Scout::with_defaults();
    let c = evaluate(&bed.ctx_rtree(), &mut scout2, &churn_regions, &config);

    assert!(s.hit_rate > c.hit_rate, "resets should hurt: {:.3} vs {:.3}", s.hit_rate, c.hit_rate);
    assert!(c.hit_rate > 0.15, "SCOUT should survive resets, got {:.3}", c.hit_rate);
    assert!(c.speedup >= 1.0);
}

#[test]
fn reset_sequences_have_jumps() {
    let bed = bed(45);
    let params =
        SequenceParams { length: 30, reset_prob: 0.3, ..SequenceParams::sensitivity_default() };
    let seq = &generate_sequences(&bed.dataset, &params, 1, 46)[0];
    assert_eq!(seq.regions.len(), 30);
    let step = params.center_step();
    let jumps = seq
        .regions
        .windows(2)
        .filter(|w| w[0].center().distance(w[1].center()) > step * 3.0)
        .count();
    assert!(jumps >= 1, "expected at least one reset jump");
}

#[test]
fn broad_equal_matches_paper_equal_split_semantics() {
    // BroadEqual must still work end to end and stay in the same accuracy
    // neighborhood as ranked Broad.
    let bed = bed(47);
    let params = SequenceParams { length: 15, ..SequenceParams::sensitivity_default() };
    let regions = region_lists(&generate_sequences(&bed.dataset, &params, 4, 48));
    let config = ExecutorConfig::default();
    let mut eq = Scout::new(ScoutConfig { strategy: Strategy::BroadEqual, ..Default::default() });
    let m = evaluate(&bed.ctx_rtree(), &mut eq, &regions, &config);
    assert!(m.hit_rate > 0.3, "BroadEqual collapsed: {:.3}", m.hit_rate);
}
