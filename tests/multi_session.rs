//! Acceptance tests of the multi-session engine (ISSUE 2): round-robin
//! determinism, round-robin vs. threaded accounting equivalence, and
//! cross-session cache sharing.

use scout::prelude::*;
use scout_synth::{generate_sequences, SequenceParams};

/// A small neuron bed with K guided sequences, one per session — each
/// client follows its own latent structure through the same tissue block.
fn bed_and_streams(k: usize) -> (TestBed, Vec<Vec<scout::geometry::QueryRegion>>) {
    let dataset = scout_synth::generate_neurons(
        &scout_synth::NeuronParams { neuron_count: 8, fiber_steps: 220, ..Default::default() },
        11,
    );
    let bed = TestBed::with_page_capacity(dataset, 32);
    let params = SequenceParams { length: 8, ..SequenceParams::sensitivity_default() };
    let sequences = generate_sequences(&bed.dataset, &params, k, 23);
    let regions = region_lists(&sequences);
    (bed, regions)
}

/// K sessions, each with its own seeded SCOUT instance.
fn scout_sessions(streams: &[Vec<scout::geometry::QueryRegion>]) -> Vec<Session> {
    streams
        .iter()
        .enumerate()
        .map(|(id, regions)| {
            Session::new(id, Box::new(Scout::with_seed(0xBEEF + id as u64)), regions.clone())
        })
        .collect()
}

/// An eviction-free executor config: the shared cache holds the whole
/// dataset and the window is generous, which makes cache membership per
/// round the union of all sessions' prefetches — the precondition for
/// order-independent totals (DESIGN.md §5).
fn ample_config(bed: &TestBed, shards: usize, schedule: Schedule) -> MultiSessionConfig {
    MultiSessionConfig {
        exec: ExecutorConfig {
            window_ratio: 8.0,
            cache_pages: bed.rtree.layout().page_count(),
            ..ExecutorConfig::default()
        },
        shards,
        schedule,
    }
}

#[test]
fn round_robin_is_deterministic_byte_for_byte() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    let engine = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin));
    let a = engine.run(&ctx, scout_sessions(&streams)).render();
    let b = engine.run(&ctx, scout_sessions(&streams)).render();
    assert_eq!(a, b, "two round-robin runs with the same seed diverged");
}

#[test]
fn threaded_totals_match_round_robin() {
    let (bed, streams) = bed_and_streams(8);
    let ctx = bed.ctx_rtree();

    let rr = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin))
        .run(&ctx, scout_sessions(&streams));
    let th = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::Threaded))
        .run(&ctx, scout_sessions(&streams));

    // The exact-equality guarantee below holds only under the DESIGN.md §5
    // preconditions (no evictions; window budgets never binding). Assert
    // the observable one so a workload drift fails loudly as a broken
    // precondition instead of surfacing as a mysterious flake.
    assert_eq!(rr.cache.evictions, 0, "precondition violated: round-robin run evicted");
    assert_eq!(th.cache.evictions, 0, "precondition violated: threaded run evicted");

    assert_eq!(rr.total_pages(), th.total_pages(), "result-page totals must be identical");
    assert_eq!(
        rr.total_pages_hit(),
        th.total_pages_hit(),
        "threaded K=8 must hit the same total pages as round-robin (order-independent \
         accounting)"
    );
    // Per-session accounting also matches: reports are keyed by id.
    for (a, b) in rr.sessions.iter().zip(&th.sessions) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.pages_hit, b.pages_hit, "session {} hit accounting diverged", a.id);
    }
}

#[test]
fn sessions_following_the_same_structure_share_the_cache() {
    // Two clients on the *same* fiber: a SCOUT leader and a rider that
    // never prefetches. With a private cache the rider hits nothing; over
    // the shared cache it rides the leader's prefetches.
    let (bed, streams) = bed_and_streams(1);
    let ctx = bed.ctx_rtree();
    let shared_stream = streams[0].clone();

    let engine = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin));
    let sessions = vec![
        Session::new(0, Box::new(Scout::with_defaults()), shared_stream.clone()),
        Session::new(1, Box::new(NoPrefetch), shared_stream.clone()),
    ];
    let shared = engine.run(&ctx, sessions);

    // Private baseline: the rider alone never hits.
    let engine = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin));
    let private =
        engine.run(&ctx, vec![Session::new(1, Box::new(NoPrefetch), shared_stream.clone())]);
    assert_eq!(private.sessions[0].pages_hit, 0, "a lone NoPrefetch client cannot hit");

    let rider = &shared.sessions[1];
    assert!(rider.pages_hit > 0, "rider should have been served from the leader's prefetches");
    // And the leader loses nothing: its own hits match a solo run.
    let engine = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin));
    let solo_leader = engine
        .run(&ctx, vec![Session::new(0, Box::new(Scout::with_defaults()), shared_stream.clone())]);
    assert_eq!(shared.sessions[0].pages_hit, solo_leader.sessions[0].pages_hit);
}

#[test]
fn report_exposes_percentiles_and_cache_stats() {
    let (bed, streams) = bed_and_streams(3);
    let ctx = bed.ctx_rtree();
    let engine = MultiSessionExecutor::new(ample_config(&bed, 4, Schedule::RoundRobin));
    let report = engine.run(&ctx, scout_sessions(&streams));

    assert_eq!(report.sessions.len(), 3);
    for s in &report.sessions {
        assert!(s.residual.p50 <= s.residual.p95);
        assert!(s.residual.p95 <= s.residual.p99);
        assert!(s.queries > 0);
    }
    assert!(report.cache.accesses() > 0, "shared cache saw no traffic");
    assert!(report.cache.insertions > 0, "nothing was prefetched");
    assert!(report.disk_busy_us > 0.0);
    let rendered = report.render();
    assert!(rendered.contains("p99"));
    assert!(rendered.contains("shared cache"));
}

#[test]
fn warm_cache_rerun_improves_and_resets_stats() {
    let (bed, streams) = bed_and_streams(2);
    let ctx = bed.ctx_rtree();
    let config = ample_config(&bed, 8, Schedule::RoundRobin);
    let engine = MultiSessionExecutor::new(config);
    let cache = ShardedCache::new(config.exec.cache_pages, config.shards);

    let cold = engine.run_on(&ctx, scout_sessions(&streams), &cache);
    let warm = engine.run_on(&ctx, scout_sessions(&streams), &cache);
    // run_on resets counters but keeps contents: the warm run starts with
    // every previously prefetched page already cached, so it hits at least
    // as often and has little left to insert.
    assert!(warm.hit_rate() >= cold.hit_rate());
    assert!(
        warm.cache.insertions < cold.cache.insertions,
        "warm run re-inserted pages the cold run already cached ({} vs {})",
        warm.cache.insertions,
        cold.cache.insertions
    );
}
