//! Acceptance tests of the multi-session engine (ISSUE 2): round-robin
//! determinism, round-robin vs. threaded accounting equivalence, and
//! cross-session cache sharing. Extended for the M:N work-stealing
//! scheduler (ISSUE 7): width-1 byte-identity with round-robin, totals
//! equality at every width, admission control, and fleet edge cases.

use scout::prelude::*;
use scout_synth::{generate_sequences, SequenceParams};

/// A small neuron bed with K guided sequences, one per session — each
/// client follows its own latent structure through the same tissue block.
fn bed_and_streams(k: usize) -> (TestBed, Vec<Vec<scout::geometry::QueryRegion>>) {
    let dataset = scout_synth::generate_neurons(
        &scout_synth::NeuronParams { neuron_count: 8, fiber_steps: 220, ..Default::default() },
        11,
    );
    let bed = TestBed::with_page_capacity(dataset, 32);
    let params = SequenceParams { length: 8, ..SequenceParams::sensitivity_default() };
    let sequences = generate_sequences(&bed.dataset, &params, k, 23);
    let regions = region_lists(&sequences);
    (bed, regions)
}

/// K sessions, each with its own seeded SCOUT instance.
fn scout_sessions(streams: &[Vec<scout::geometry::QueryRegion>]) -> Vec<Session> {
    streams
        .iter()
        .enumerate()
        .map(|(id, regions)| {
            Session::new(id, Box::new(Scout::with_seed(0xBEEF + id as u64)), regions.clone())
        })
        .collect()
}

/// An eviction-free executor config: the shared cache holds the whole
/// dataset and the window is generous, which makes cache membership per
/// round the union of all sessions' prefetches — the precondition for
/// order-independent totals (DESIGN.md §5).
fn ample_config(bed: &TestBed, shards: usize, schedule: Schedule) -> MultiSessionConfig {
    MultiSessionConfig {
        exec: ExecutorConfig {
            window_ratio: 8.0,
            cache_pages: bed.rtree.layout().page_count(),
            ..ExecutorConfig::default()
        },
        shards,
        schedule,
        admission: AdmissionControl::unlimited(),
        ..Default::default()
    }
}

#[test]
fn round_robin_is_deterministic_byte_for_byte() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    let engine = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin));
    let a = engine.run(&ctx, scout_sessions(&streams)).render();
    let b = engine.run(&ctx, scout_sessions(&streams)).render();
    assert_eq!(a, b, "two round-robin runs with the same seed diverged");
}

#[test]
fn threaded_totals_match_round_robin() {
    let (bed, streams) = bed_and_streams(8);
    let ctx = bed.ctx_rtree();

    let rr = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin))
        .run(&ctx, scout_sessions(&streams));
    let th = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::Threaded))
        .run(&ctx, scout_sessions(&streams));

    // The exact-equality guarantee below holds only under the DESIGN.md §5
    // preconditions (no evictions; window budgets never binding). Assert
    // the observable one so a workload drift fails loudly as a broken
    // precondition instead of surfacing as a mysterious flake.
    assert_eq!(rr.cache.evictions, 0, "precondition violated: round-robin run evicted");
    assert_eq!(th.cache.evictions, 0, "precondition violated: threaded run evicted");

    assert_eq!(rr.total_pages(), th.total_pages(), "result-page totals must be identical");
    assert_eq!(
        rr.total_pages_hit(),
        th.total_pages_hit(),
        "threaded K=8 must hit the same total pages as round-robin (order-independent \
         accounting)"
    );
    // Per-session accounting also matches: reports are keyed by id.
    for (a, b) in rr.sessions.iter().zip(&th.sessions) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.pages_hit, b.pages_hit, "session {} hit accounting diverged", a.id);
    }
}

#[test]
fn sessions_following_the_same_structure_share_the_cache() {
    // Two clients on the *same* fiber: a SCOUT leader and a rider that
    // never prefetches. With a private cache the rider hits nothing; over
    // the shared cache it rides the leader's prefetches.
    let (bed, streams) = bed_and_streams(1);
    let ctx = bed.ctx_rtree();
    let shared_stream = streams[0].clone();

    let engine = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin));
    let sessions = vec![
        Session::new(0, Box::new(Scout::with_defaults()), shared_stream.clone()),
        Session::new(1, Box::new(NoPrefetch), shared_stream.clone()),
    ];
    let shared = engine.run(&ctx, sessions);

    // Private baseline: the rider alone never hits.
    let engine = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin));
    let private =
        engine.run(&ctx, vec![Session::new(1, Box::new(NoPrefetch), shared_stream.clone())]);
    assert_eq!(private.sessions[0].pages_hit, 0, "a lone NoPrefetch client cannot hit");

    let rider = &shared.sessions[1];
    assert!(rider.pages_hit > 0, "rider should have been served from the leader's prefetches");
    // And the leader loses nothing: its own hits match a solo run.
    let engine = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin));
    let solo_leader = engine
        .run(&ctx, vec![Session::new(0, Box::new(Scout::with_defaults()), shared_stream.clone())]);
    assert_eq!(shared.sessions[0].pages_hit, solo_leader.sessions[0].pages_hit);
}

#[test]
fn report_exposes_percentiles_and_cache_stats() {
    let (bed, streams) = bed_and_streams(3);
    let ctx = bed.ctx_rtree();
    let engine = MultiSessionExecutor::new(ample_config(&bed, 4, Schedule::RoundRobin));
    let report = engine.run(&ctx, scout_sessions(&streams));

    assert_eq!(report.sessions.len(), 3);
    for s in &report.sessions {
        assert!(s.residual.p50 <= s.residual.p95);
        assert!(s.residual.p95 <= s.residual.p99);
        assert!(s.queries > 0);
    }
    assert!(report.cache.accesses() > 0, "shared cache saw no traffic");
    assert!(report.cache.insertions > 0, "nothing was prefetched");
    assert!(report.disk_busy_us > 0.0);
    let rendered = report.render();
    assert!(rendered.contains("p99"));
    assert!(rendered.contains("shared cache"));
}

#[test]
fn warm_cache_rerun_improves_and_resets_stats() {
    let (bed, streams) = bed_and_streams(2);
    let ctx = bed.ctx_rtree();
    let config = ample_config(&bed, 8, Schedule::RoundRobin);
    let engine = MultiSessionExecutor::new(config);
    let cache = ShardedCache::new(config.exec.cache_pages, config.shards);

    let cold = engine.run_on(&ctx, scout_sessions(&streams), &cache);
    let warm = engine.run_on(&ctx, scout_sessions(&streams), &cache);
    // run_on resets counters but keeps contents: the warm run starts with
    // every previously prefetched page already cached, so it hits at least
    // as often and has little left to insert.
    assert!(warm.hit_rate() >= cold.hit_rate());
    assert!(
        warm.cache.insertions < cold.cache.insertions,
        "warm run re-inserted pages the cold run already cached ({} vs {})",
        warm.cache.insertions,
        cold.cache.insertions
    );
}

// ---------------------------------------------------------------------------
// ISSUE 7: the M:N work-stealing scheduler
// ---------------------------------------------------------------------------

#[test]
fn work_stealing_totals_match_round_robin_at_every_width() {
    let (bed, streams) = bed_and_streams(8);
    let ctx = bed.ctx_rtree();
    let rr = MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::RoundRobin))
        .run(&ctx, scout_sessions(&streams));
    assert_eq!(rr.cache.evictions, 0, "precondition violated: round-robin run evicted");

    for workers in [1, 2, 4, 8] {
        let ws =
            MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::WorkStealing { workers }))
                .run(&ctx, scout_sessions(&streams));
        assert_eq!(ws.cache.evictions, 0, "precondition violated: width-{workers} run evicted");
        assert_eq!(ws.total_pages(), rr.total_pages(), "width {workers}");
        assert_eq!(
            ws.total_pages_hit(),
            rr.total_pages_hit(),
            "M:N width {workers} must hit the same total pages as round-robin"
        );
        for (a, b) in rr.sessions.iter().zip(&ws.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.pages_hit, b.pages_hit,
                "session {} hit accounting diverged at width {workers}",
                a.id
            );
        }
        let sched = ws.scheduler.expect("work-stealing runs attach scheduler counters");
        assert_eq!(sched.retired, 8, "width {workers}");
        assert_eq!(sched.shed, 0, "width {workers}");
    }
}

#[test]
fn work_stealing_width1_is_byte_identical_to_round_robin() {
    // The width-1 oracle holds even under eviction pressure — a cache far
    // smaller than the dataset — because it runs the exact round-robin
    // interleaving, not merely an equivalent one.
    let (bed, streams) = bed_and_streams(5);
    let ctx = bed.ctx_rtree();
    let mut pressure = ample_config(&bed, 8, Schedule::RoundRobin);
    pressure.exec.window_ratio = 1.6;
    pressure.exec.cache_pages = 24;
    for config in [ample_config(&bed, 8, Schedule::RoundRobin), pressure] {
        let rr = MultiSessionExecutor::new(config).run(&ctx, scout_sessions(&streams));
        let mut ws_config = config;
        ws_config.schedule = Schedule::WorkStealing { workers: 1 };
        let ws = MultiSessionExecutor::new(ws_config).run(&ctx, scout_sessions(&streams));
        assert_eq!(
            rr.render(),
            ws.render(),
            "width-1 M:N diverged from round-robin (cache_pages = {})",
            config.exec.cache_pages
        );
        assert!((rr.disk_busy_us - ws.disk_busy_us).abs() < 1e-12);
    }
}

#[test]
fn zero_query_fleet_terminates_instantly() {
    let (bed, _) = bed_and_streams(1);
    let ctx = bed.ctx_rtree();
    for schedule in [
        Schedule::RoundRobin,
        Schedule::Threaded,
        Schedule::WorkStealing { workers: 1 },
        Schedule::WorkStealing { workers: 4 },
    ] {
        let engine = MultiSessionExecutor::new(ample_config(&bed, 8, schedule));
        let sessions: Vec<Session> =
            (0..5).map(|id| Session::new(id, Box::new(NoPrefetch), Vec::new())).collect();
        let report = engine.run(&ctx, sessions);
        assert_eq!(report.sessions.len(), 5, "{schedule:?}");
        assert!(report.sessions.iter().all(|s| s.queries == 0), "{schedule:?}");
        assert_eq!(report.total_pages(), 0, "{schedule:?}");
    }
}

#[test]
fn one_session_with_a_hundred_thousand_queries() {
    // Stresses round count, not work per query: a 40-point line scanned
    // with single-object queries, so each of the 100k rounds is a cheap
    // index probe plus one cached page access. The scheduler must neither
    // overflow a queue nor slow down asymptotically.
    let objects: Vec<SpatialObject> = (0..40)
        .map(|i| {
            SpatialObject::new(
                scout::geometry::ObjectId(i),
                scout::geometry::StructureId(0),
                Shape::Point(Vec3::new(10.0 * i as f64, 0.5, 0.5)),
            )
        })
        .collect();
    let dataset = Dataset {
        domain: Domain::Neuron,
        bounds: Aabb::new(Vec3::ZERO, Vec3::new(400.0, 1.0, 1.0)),
        objects,
        guide: scout_synth::GuideGraph::new(),
        adjacency: None,
    };
    let bed = TestBed::with_page_capacity(dataset, 16);
    let ctx = bed.ctx_rtree();
    let regions: Vec<QueryRegion> = (0..100_000)
        .map(|i| QueryRegion::new(Vec3::new(10.0 * (i % 40) as f64, 0.5, 0.5), 8.0, Aspect::Cube))
        .collect();
    for workers in [1, 2] {
        let engine =
            MultiSessionExecutor::new(ample_config(&bed, 4, Schedule::WorkStealing { workers }));
        let report = engine.run(&ctx, vec![Session::new(0, Box::new(NoPrefetch), regions.clone())]);
        assert_eq!(report.sessions[0].queries, 100_000, "width {workers}");
        let sched = report.scheduler.unwrap();
        assert_eq!(sched.rounds, 100_000, "width {workers}");
        assert_eq!(sched.retired, 1, "width {workers}");
    }
}

#[test]
fn unequal_query_counts_park_instead_of_spinning() {
    let (bed, streams) = bed_and_streams(2);
    let ctx = bed.ctx_rtree();
    let mut per_width: Vec<(u64, u64, u64)> = Vec::new();
    for workers in [1, 2, 4] {
        let engine =
            MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::WorkStealing { workers }));
        let sessions = vec![
            Session::new(0, Box::new(NoPrefetch), streams[0].clone()),
            Session::new(1, Box::new(NoPrefetch), streams[1][..2].to_vec()),
            Session::new(2, Box::new(NoPrefetch), Vec::new()),
        ];
        let report = engine.run(&ctx, sessions);
        assert_eq!(report.sessions[0].queries, 8);
        assert_eq!(report.sessions[1].queries, 2);
        assert_eq!(report.sessions[2].queries, 0);
        let sched = report.scheduler.unwrap();
        let total_queries = 10u64;
        assert!(
            sched.parks <= 2 * total_queries,
            "parks must track work, not rounds × fleet size: {} at width {workers}",
            sched.parks
        );
        assert_eq!(sched.retired, 3, "width {workers}");
        assert_eq!(sched.rounds, 8, "width {workers}");
        per_width.push((sched.rounds, sched.parks, sched.retired));
    }
    // Park accounting is schedule-invariant: every width does the same
    // serves and carries the same survivors.
    assert!(per_width.windows(2).all(|w| w[0] == w[1]), "{per_width:?}");
}

/// A prefetcher that panics while observing its `detonate_at`-th query —
/// the PR 6 panic-propagation harness, aimed at the session scheduler.
struct Detonator {
    seen: usize,
    detonate_at: usize,
}

impl Prefetcher for Detonator {
    fn name(&self) -> String {
        "Detonator".to_string()
    }
    fn observe(
        &mut self,
        _ctx: &SimContext<'_>,
        _region: &QueryRegion,
        _result: &scout::index::QueryResult,
    ) -> scout::sim::PredictionStats {
        self.seen += 1;
        assert!(self.seen < self.detonate_at, "session detonated on schedule");
        scout::sim::PredictionStats::default()
    }
    fn plan(&mut self, _ctx: &SimContext<'_>) -> scout::sim::PrefetchPlan {
        scout::sim::PrefetchPlan::empty()
    }
    fn reset(&mut self) {
        self.seen = 0;
    }
}

#[test]
fn panicking_session_does_not_deadlock_the_fleet() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    for workers in [1, 2, 4] {
        let engine =
            MultiSessionExecutor::new(ample_config(&bed, 8, Schedule::WorkStealing { workers }));
        let mut sessions = scout_sessions(&streams);
        sessions[2] =
            Session::new(2, Box::new(Detonator { seen: 0, detonate_at: 3 }), streams[2].clone());
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(&ctx, sessions)));
        let payload = caught.expect_err(&format!("width {workers} swallowed the session panic"));
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is a message");
        assert!(message.contains("detonated"), "width {workers}: {message}");
        // The crew survives: the same schedule must run a healthy fleet
        // to completion immediately afterwards.
        let report = engine.run(&ctx, scout_sessions(&streams));
        assert_eq!(report.sessions.len(), 4, "width {workers}");
        assert!(report.sessions.iter().all(|s| s.queries == 8), "width {workers}");
    }
}

/// ISSUE 8 satellite: the PR 7 panic-containment guarantee must hold
/// while the disk is actively injecting faults — a session blowing up
/// mid-observe and a flaky device are independent failure domains, and
/// neither may mask or amplify the other.
#[test]
fn panicking_session_under_fault_injection_is_still_contained() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    let weather = FaultConfig {
        seed: 0xBAD5EED,
        transient_rate: 0.10,
        corrupt_rate: 0.03,
        stuck_rate: 0.01,
        slow_rate: 0.05,
        slow_multiplier: 8.0,
    };
    for workers in [2, 4] {
        let mut config = ample_config(&bed, 8, Schedule::WorkStealing { workers });
        config.exec.faults = FaultPlan::injecting(weather);
        let engine = MultiSessionExecutor::new(config);
        let mut sessions = scout_sessions(&streams);
        sessions[2] =
            Session::new(2, Box::new(Detonator { seen: 0, detonate_at: 3 }), streams[2].clone());
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run(&ctx, sessions)));
        let payload = caught.expect_err(&format!("width {workers} swallowed the session panic"));
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("panic payload is a message");
        assert!(message.contains("detonated"), "width {workers}: {message}");
        // Crew and sibling fleets survive: the same engine then runs a
        // healthy fleet over the same faulty device to completion, and the
        // report (fault block included) still renders.
        let report = engine.run(&ctx, scout_sessions(&streams));
        assert_eq!(report.sessions.len(), 4, "width {workers}");
        assert!(report.sessions.iter().all(|s| s.queries == 8), "width {workers}");
        let faults = report.faults.expect("fault injection was enabled");
        assert_eq!(faults.corruption_served, 0, "width {workers}: corrupt page served");
        assert!(faults.injected() > 0, "width {workers}: weather never materialized");
        assert!(report.render().contains("faults:"), "width {workers}");
    }
}

#[test]
fn bounded_admission_staggers_but_completes_everyone() {
    let (bed, streams) = bed_and_streams(6);
    let ctx = bed.ctx_rtree();
    for workers in [1, 3] {
        let mut config = ample_config(&bed, 8, Schedule::WorkStealing { workers });
        config.admission = AdmissionControl::bounded(2);
        let report = MultiSessionExecutor::new(config).run(
            &ctx,
            scout_sessions(&streams)
                .into_iter()
                .map(|s| {
                    let t = s.id() % 2;
                    s.with_tenant(t)
                })
                .collect(),
        );
        assert!(report.sessions.iter().all(|s| s.queries == 8), "width {workers}");
        assert_eq!(report.total_shed(), 0, "width {workers}");
        let sched = report.scheduler.unwrap();
        assert_eq!(sched.admitted, 6, "width {workers}");
        assert_eq!(sched.retired, 6, "width {workers}");
        // 6 sessions through a 2-wide door, 8 queries each: at least three
        // waves of rounds.
        assert!(sched.rounds >= 24, "width {workers}: only {} rounds", sched.rounds);
        // Two tenants, reported separately.
        assert_eq!(report.tenants.len(), 2, "width {workers}");
        assert!(report.tenants.iter().all(|t| t.sessions == 3), "width {workers}");
        assert!(report.render().contains("tenant"), "width {workers}");
    }
}

#[test]
fn backlog_limit_sheds_the_flooding_tenant_first() {
    let (bed, streams) = bed_and_streams(6);
    let ctx = bed.ctx_rtree();
    for workers in [1, 2] {
        let mut config = ample_config(&bed, 8, Schedule::WorkStealing { workers });
        config.admission = AdmissionControl::bounded(2).with_backlog_limit(1);
        // Tenant 0 floods with 5 sessions; tenant 1 brings one.
        let sessions: Vec<Session> = scout_sessions(&streams)
            .into_iter()
            .map(|s| {
                let t = usize::from(s.id() == 5);
                s.with_tenant(t)
            })
            .collect();
        let report = MultiSessionExecutor::new(config).run(&ctx, sessions);
        // 2 admitted up front + 1 queued: 3 shed, all from tenant 0.
        assert_eq!(report.total_shed(), 3, "width {workers}");
        let t0 = &report.tenants[0];
        assert_eq!((t0.tenant, t0.shed), (0, 3), "width {workers}");
        assert_eq!(report.tenants[1].shed, 0, "width {workers}");
        for s in &report.sessions {
            assert_eq!(s.queries == 0, s.shed, "width {workers}: session {}", s.id);
        }
        assert_eq!(report.scheduler.unwrap().shed, 3, "width {workers}");
    }
}

#[test]
fn thrash_delay_cannot_livelock_the_fleet() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    for workers in [1, 2] {
        let mut config = ample_config(&bed, 8, Schedule::WorkStealing { workers });
        // Thresholds no real cache can satisfy: every observed window
        // reads as thrashing, so admission is delayed at every boundary —
        // except the starvation override, which must still drip sessions
        // through one wave at a time.
        config.admission = AdmissionControl::bounded(1).with_thrash_policy(2.0, -1.0);
        let report = MultiSessionExecutor::new(config).run(&ctx, scout_sessions(&streams));
        assert!(
            report.sessions.iter().all(|s| s.queries == 8),
            "width {workers}: a permanently-thrashed cache starved the backlog"
        );
        let sched = report.scheduler.unwrap();
        assert_eq!(sched.admitted, 4, "width {workers}");
        assert!(sched.delayed_rounds > 0, "width {workers}: delay policy never engaged");
    }
}
