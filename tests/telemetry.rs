//! Acceptance tests of the flight-recorder telemetry layer (ISSUE 10):
//! the disarmed byte-identity contract (telemetry `None` must be
//! invisible everywhere), armed width-1 event-stream determinism, the
//! histogram-vs-exact-percentile tolerance, and registry/report counter
//! consistency.

use scout::prelude::*;
use scout::telemetry::LogHistogram;
use scout_storage::BatchPlan;
use scout_synth::{generate_sequences, SequenceParams};

/// A small neuron bed with K guided sequences, one per session.
fn bed_and_streams(k: usize) -> (TestBed, Vec<Vec<scout::geometry::QueryRegion>>) {
    let dataset = scout_synth::generate_neurons(
        &scout_synth::NeuronParams { neuron_count: 8, fiber_steps: 220, ..Default::default() },
        11,
    );
    let bed = TestBed::with_page_capacity(dataset, 32);
    let params = SequenceParams { length: 8, ..SequenceParams::sensitivity_default() };
    let sequences = generate_sequences(&bed.dataset, &params, k, 23);
    let regions = region_lists(&sequences);
    (bed, regions)
}

/// K sessions, each with its own seeded SCOUT instance.
fn scout_sessions(streams: &[Vec<scout::geometry::QueryRegion>]) -> Vec<Session> {
    streams
        .iter()
        .enumerate()
        .map(|(id, regions)| {
            Session::new(id, Box::new(Scout::with_seed(0xBEEF + id as u64)), regions.clone())
        })
        .collect()
}

fn config(schedule: Schedule, batched: bool, armed: bool) -> MultiSessionConfig {
    MultiSessionConfig {
        exec: ExecutorConfig {
            window_ratio: 2.0,
            cache_pages: 512,
            telemetry: armed.then(TelemetryPlan::default),
            ..ExecutorConfig::default()
        },
        shards: 8,
        schedule,
        admission: AdmissionControl::unlimited(),
        batch: BatchPlan { enabled: batched },
    }
}

fn run(
    bed: &TestBed,
    streams: &[Vec<scout::geometry::QueryRegion>],
    schedule: Schedule,
    batched: bool,
    armed: bool,
) -> MultiSessionReport {
    MultiSessionExecutor::new(config(schedule, batched, armed))
        .run(&bed.ctx_rtree(), scout_sessions(streams))
}

#[test]
fn disarmed_run_is_byte_identical_and_attaches_nothing() {
    let (bed, streams) = bed_and_streams(4);
    let a = run(&bed, &streams, Schedule::RoundRobin, false, false);
    let b = run(&bed, &streams, Schedule::RoundRobin, false, false);
    assert!(a.telemetry.is_none(), "disarmed runs must not attach a TelemetryReport");
    assert_eq!(a.render(), b.render(), "disarmed reruns diverged");
}

#[test]
fn armed_run_renders_byte_identically_to_disarmed() {
    let (bed, streams) = bed_and_streams(4);
    let disarmed = run(&bed, &streams, Schedule::RoundRobin, false, false).render();
    for schedule in [Schedule::RoundRobin, Schedule::WorkStealing { workers: 1 }] {
        let armed = run(&bed, &streams, schedule, false, true);
        assert!(armed.telemetry.is_some(), "armed runs must attach a TelemetryReport");
        assert_eq!(
            armed.render(),
            disarmed,
            "telemetry must never change a report render ({schedule:?})"
        );
    }
}

#[test]
fn armed_width1_event_streams_are_byte_identical_across_reruns() {
    let (bed, streams) = bed_and_streams(4);
    for (schedule, batched) in [
        (Schedule::RoundRobin, false),
        (Schedule::WorkStealing { workers: 1 }, false),
        (Schedule::RoundRobin, true),
    ] {
        let a = run(&bed, &streams, schedule, batched, true);
        let b = run(&bed, &streams, schedule, batched, true);
        let ja = a.telemetry.as_ref().expect("armed").to_jsonl();
        let jb = b.telemetry.as_ref().expect("armed").to_jsonl();
        assert!(!ja.is_empty(), "armed run recorded no events ({schedule:?})");
        assert_eq!(ja, jb, "armed W1 event stream diverged ({schedule:?}, batched={batched})");
    }
    // And the W1 determinism ladder extends to events: width-1 work
    // stealing exports the same timeline as round-robin.
    let rr = run(&bed, &streams, Schedule::RoundRobin, false, true);
    let ws1 = run(&bed, &streams, Schedule::WorkStealing { workers: 1 }, false, true);
    assert_eq!(
        rr.telemetry.as_ref().expect("armed").to_jsonl(),
        ws1.telemetry.as_ref().expect("armed").to_jsonl(),
        "width-1 work stealing must export round-robin's exact timeline"
    );
}

#[test]
fn registry_counters_match_report_totals_at_every_width() {
    let (bed, streams) = bed_and_streams(6);
    for workers in [1usize, 2, 4] {
        let report = run(&bed, &streams, Schedule::WorkStealing { workers }, false, true);
        let telem = report.telemetry.as_ref().expect("armed");
        let queries: usize = report.sessions.iter().map(|s| s.queries).sum();
        assert_eq!(telem.counter(CounterId::QueriesServed), queries as u64, "w={workers}");
        assert_eq!(telem.counter(CounterId::PagesRequested), report.total_pages(), "w={workers}");
        assert_eq!(telem.counter(CounterId::PagesHit), report.total_pages_hit(), "w={workers}");
        assert_eq!(telem.counter(CounterId::WindowsOpened), queries as u64, "w={workers}");
        let sched = report.scheduler.as_ref().expect("work stealing");
        assert_eq!(telem.counter(CounterId::SessionsStolen), sched.steals, "w={workers}");
        assert_eq!(telem.counter(CounterId::SessionsParked), sched.parks, "w={workers}");
        assert_eq!(telem.counter(CounterId::EventsDropped), telem.dropped_events());
        // The registry's bounded-histogram view of the residual tail must
        // sit within one log bucket of the exact sort-based percentiles.
        let exact = report.residual;
        let view = telem.residual_percentiles();
        for (e, v) in [(exact.p50, view.p50), (exact.p95, view.p95), (exact.p99, view.p99)] {
            let bucket = LogHistogram::bucket_index(e);
            let lower = if bucket == 0 { 0.0 } else { LogHistogram::bucket_upper_us(bucket - 1) };
            assert!(
                v >= lower && v <= LogHistogram::bucket_upper_us(bucket),
                "histogram percentile {v} outside the exact value's bucket [{lower}, {}] \
                 (exact {e}, w={workers})",
                LogHistogram::bucket_upper_us(bucket)
            );
        }
    }
}

#[test]
fn histogram_percentiles_track_the_exact_oracle_across_widths() {
    // Direct histogram-vs-oracle check at fleet widths 1/2/4: whatever
    // the interleaving, the merged histogram is a pure function of the
    // recorded multiset, so every percentile lands in the same bucket the
    // exact nearest-rank value occupies.
    let (bed, streams) = bed_and_streams(4);
    for workers in [1usize, 2, 4] {
        let report = run(&bed, &streams, Schedule::WorkStealing { workers }, false, true);
        let telem = report.telemetry.as_ref().expect("armed");
        // The exact oracle: the report's own sort-based percentiles over
        // the identical residual multiset the histogram recorded.
        let exact = report.residual;
        for (p, v) in [(50.0, exact.p50), (95.0, exact.p95), (99.0, exact.p99)] {
            let h = telem.percentile(HistogramId::ResidualUs, p);
            let bucket = LogHistogram::bucket_index(v);
            let upper = LogHistogram::bucket_upper_us(bucket);
            let lower = if bucket == 0 { 0.0 } else { LogHistogram::bucket_upper_us(bucket - 1) };
            assert!(
                h >= lower && h <= upper,
                "p{p} histogram {h} vs exact {v} (bucket [{lower}, {upper}], w={workers})"
            );
        }
    }
}
