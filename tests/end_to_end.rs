//! End-to-end integration tests across all crates: datasets → indexes →
//! guided sequences → executor → metrics, checking the paper's headline
//! qualitative claims at a small scale.

use scout::prelude::*;

fn small_bed(seed: u64) -> TestBed {
    let dataset = generate_neurons(&NeuronParams { neuron_count: 60, ..Default::default() }, seed);
    TestBed::new(dataset)
}

fn workload(
    bed: &TestBed,
    length: usize,
    volume: f64,
    gap: f64,
    n: usize,
    seed: u64,
) -> Vec<Vec<QueryRegion>> {
    let params = SequenceParams {
        length,
        volume,
        aspect: Aspect::Cube,
        gap,
        overlap_frac: 0.1,
        reset_prob: 0.0,
    };
    region_lists(&generate_sequences(&bed.dataset, &params, n, seed))
}

#[test]
fn scout_beats_trajectory_extrapolation_on_neuron_tissue() {
    let bed = small_bed(1);
    let regions = workload(&bed, 20, 80_000.0, 0.0, 4, 10);
    let config = ExecutorConfig::default();

    let mut scout = Scout::with_defaults();
    let s = evaluate(&bed.ctx_rtree(), &mut scout, &regions, &config);
    let mut sl = StraightLine::new();
    let l = evaluate(&bed.ctx_rtree(), &mut sl, &regions, &config);
    let mut ewma = Ewma::paper_best();
    let e = evaluate(&bed.ctx_rtree(), &mut ewma, &regions, &config);

    assert!(
        s.hit_rate > l.hit_rate && s.hit_rate > e.hit_rate,
        "SCOUT {:.3} must beat straight line {:.3} and EWMA {:.3}",
        s.hit_rate,
        l.hit_rate,
        e.hit_rate
    );
    assert!(s.speedup > 1.5, "SCOUT speedup {:.2} too small", s.speedup);
}

#[test]
fn every_prefetcher_helps_over_no_prefetching() {
    let bed = small_bed(2);
    let regions = workload(&bed, 15, 80_000.0, 0.0, 3, 11);
    let config = ExecutorConfig::default();
    let mut prefetchers: Vec<Box<dyn Prefetcher>> = vec![
        Box::new(Scout::with_defaults()),
        Box::new(StraightLine::new()),
        Box::new(Ewma::paper_best()),
        Box::new(Polynomial::new(2)),
        Box::new(Velocity::new()),
        Box::new(HilbertPrefetch::default()),
        Box::new(Layered::default()),
    ];
    for p in prefetchers.iter_mut() {
        let m = evaluate(&bed.ctx_rtree(), p.as_mut(), &regions, &config);
        assert!(m.speedup >= 1.0, "{} slowed execution down: {:.3}", m.name, m.speedup);
        assert!((0.0..=1.0).contains(&m.hit_rate), "{} hit rate {}", m.name, m.hit_rate);
    }
}

#[test]
fn scout_opt_wins_with_gaps() {
    let bed = small_bed(3);
    let regions = workload(&bed, 20, 30_000.0, 20.0, 4, 12);
    let config = ExecutorConfig { window_ratio: 1.2, ..Default::default() };

    let mut scout = Scout::with_defaults();
    let s = evaluate(&bed.ctx_rtree(), &mut scout, &regions, &config);
    let mut opt = ScoutOpt::with_defaults();
    let o = evaluate(&bed.ctx_flat(), &mut opt, &regions, &config);

    assert!(
        o.hit_rate >= s.hit_rate - 0.02,
        "SCOUT-OPT {:.3} should be at least on par with SCOUT {:.3} under gaps",
        o.hit_rate,
        s.hit_rate
    );
    assert!(o.gap_pages > 0, "gap traversal never fired");
}

#[test]
fn hit_rate_grows_with_window_ratio() {
    let bed = small_bed(4);
    let regions = workload(&bed, 15, 80_000.0, 0.0, 4, 13);
    let mut rates = Vec::new();
    for r in [0.2, 1.0, 2.5] {
        let config = ExecutorConfig { window_ratio: r, ..Default::default() };
        let mut scout = Scout::with_defaults();
        rates.push(evaluate(&bed.ctx_rtree(), &mut scout, &regions, &config).hit_rate);
    }
    assert!(rates[0] < rates[2], "hit rate should grow with the window: {rates:?}");
}

#[test]
fn evaluation_is_deterministic() {
    let bed = small_bed(5);
    let regions = workload(&bed, 12, 80_000.0, 0.0, 2, 14);
    let config = ExecutorConfig::default();
    let run = || {
        let mut scout = Scout::with_defaults();
        let m = evaluate(&bed.ctx_rtree(), &mut scout, &regions, &config);
        (m.hit_rate, m.response_us, m.prefetch_pages)
    };
    assert_eq!(run(), run());
}

#[test]
fn no_prefetch_speedup_is_exactly_one() {
    let bed = small_bed(6);
    let regions = workload(&bed, 10, 80_000.0, 0.0, 2, 15);
    let mut none = NoPrefetch;
    let m = evaluate(&bed.ctx_rtree(), &mut none, &regions, &ExecutorConfig::default());
    assert!((m.speedup - 1.0).abs() < 1e-12);
    assert_eq!(m.hit_rate, 0.0);
}

#[test]
fn explicit_adjacency_path_works_end_to_end() {
    // Roads carry explicit adjacency; SCOUT must run on it (§4.1).
    let dataset = generate_roads(&RoadParams { grid_n: 24, ..Default::default() }, 21);
    assert!(dataset.adjacency.is_some());
    let bed = TestBed::new(dataset);
    let volume = 400.0 / bed.dataset.density();
    let params = SequenceParams {
        length: 15,
        volume,
        aspect: Aspect::Cube,
        gap: 0.0,
        overlap_frac: 0.1,
        reset_prob: 0.0,
    };
    let regions = region_lists(&generate_sequences(&bed.dataset, &params, 3, 22));
    let mut scout = Scout::with_defaults();
    let m = evaluate(&bed.ctx_rtree(), &mut scout, &regions, &ExecutorConfig::default());
    assert!(m.hit_rate > 0.2, "SCOUT on roads: {:.3}", m.hit_rate);
}

#[test]
fn mesh_dataset_path_works_end_to_end() {
    let dataset = generate_lung(&LungParams { generations: 5, ..Default::default() }, 23);
    assert!(dataset.adjacency.is_some());
    let bed = TestBed::new(dataset);
    let volume = 400.0 / bed.dataset.density();
    let params = SequenceParams {
        length: 12,
        volume,
        aspect: Aspect::Cube,
        gap: 0.0,
        overlap_frac: 0.1,
        reset_prob: 0.0,
    };
    let regions = region_lists(&generate_sequences(&bed.dataset, &params, 3, 24));
    let mut scout = Scout::with_defaults();
    let m = evaluate(&bed.ctx_rtree(), &mut scout, &regions, &ExecutorConfig::default());
    assert!(m.hit_rate > 0.2, "SCOUT on lung mesh: {:.3}", m.hit_rate);
}
