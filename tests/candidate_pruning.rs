//! Integration tests of the §4.3 mechanism that gives SCOUT its accuracy:
//! iterative candidate pruning must converge onto the followed structure.

use scout::prelude::*;
use scout::sim::run_sequence;

fn neuron_bed(seed: u64) -> TestBed {
    TestBed::new(generate_neurons(&NeuronParams { neuron_count: 80, ..Default::default() }, seed))
}

#[test]
fn candidate_set_collapses_along_the_sequence() {
    let bed = neuron_bed(31);
    let params = SequenceParams { length: 20, ..SequenceParams::sensitivity_default() };
    let regions = region_lists(&generate_sequences(&bed.dataset, &params, 1, 32));
    let mut scout = Scout::with_defaults();
    let trace = run_sequence(&bed.ctx_rtree(), &mut scout, &regions[0], &ExecutorConfig::default());

    let candidates: Vec<usize> = trace.queries.iter().map(|q| q.prediction.candidates).collect();
    // First query sees many structures; by mid-sequence pruning should have
    // reduced the set substantially; the median of the tail must be tiny.
    let first = candidates[0];
    let mut tail: Vec<usize> = candidates[8..].to_vec();
    tail.sort_unstable();
    let median_tail = tail[tail.len() / 2];
    assert!(first >= 5, "first query should see several structures: {candidates:?}");
    assert!(median_tail <= 4, "pruning failed to converge: {candidates:?}");
}

#[test]
fn prediction_work_decreases_after_convergence() {
    // Figure 16's mechanism: once the candidate set is small, the per-
    // element traversal shrinks.
    let bed = neuron_bed(33);
    let params = SequenceParams { length: 10, ..SequenceParams::sensitivity_default() };
    let regions = region_lists(&generate_sequences(&bed.dataset, &params, 4, 34));
    let mut scout = Scout::with_defaults();

    let mut early = 0.0;
    let mut late = 0.0;
    for rs in &regions {
        let trace = run_sequence(&bed.ctx_rtree(), &mut scout, rs, &ExecutorConfig::default());
        let per_elem: Vec<f64> = trace
            .queries
            .iter()
            .map(|q| q.prediction_us / q.result_objects.max(1) as f64)
            .collect();
        early += per_elem[1]; // skip query 0 (reset, full traversal)
        late += per_elem[per_elem.len() - 1];
    }
    assert!(
        late <= early * 1.5,
        "late-sequence prediction should not grow: early {early:.4} late {late:.4}"
    );
}

#[test]
fn graph_stats_are_populated() {
    let bed = neuron_bed(35);
    let params = SequenceParams { length: 6, ..SequenceParams::sensitivity_default() };
    let regions = region_lists(&generate_sequences(&bed.dataset, &params, 1, 36));
    let mut scout = Scout::with_defaults();
    let trace = run_sequence(&bed.ctx_rtree(), &mut scout, &regions[0], &ExecutorConfig::default());
    for q in &trace.queries {
        if q.result_objects > 0 {
            assert!(q.prediction.graph_vertices == q.result_objects);
            assert!(q.prediction.graph_components >= 1);
            assert!(q.prediction.memory_bytes > 0);
            assert!(q.graph_build_us > 0.0);
        }
    }
}
