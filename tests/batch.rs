//! Acceptance tests of batched I/O submission (ISSUE 9): cross-session
//! read coalescing, determinism of the batched width-1 schedule, and
//! pages-hit parity with the unbatched engine at every crew width under
//! the eviction-free guard (DESIGN.md §5/§12).

use scout::prelude::*;
use scout_synth::{generate_sequences, SequenceParams};

/// A small neuron bed with K guided sequences, one per session.
fn bed_and_streams(k: usize) -> (TestBed, Vec<Vec<scout::geometry::QueryRegion>>) {
    let dataset = scout_synth::generate_neurons(
        &scout_synth::NeuronParams { neuron_count: 8, fiber_steps: 220, ..Default::default() },
        11,
    );
    let bed = TestBed::with_page_capacity(dataset, 32);
    let params = SequenceParams { length: 8, ..SequenceParams::sensitivity_default() };
    let sequences = generate_sequences(&bed.dataset, &params, k, 23);
    let regions = region_lists(&sequences);
    (bed, regions)
}

fn scout_sessions(streams: &[Vec<scout::geometry::QueryRegion>]) -> Vec<Session> {
    streams
        .iter()
        .enumerate()
        .map(|(id, regions)| {
            Session::new(id, Box::new(Scout::with_seed(0xBEEF + id as u64)), regions.clone())
        })
        .collect()
}

/// Eviction-free config (ample windows + a cache holding the whole
/// dataset), the precondition for order-independent pages-hit totals.
fn ample_config(bed: &TestBed, schedule: Schedule, batched: bool) -> MultiSessionConfig {
    MultiSessionConfig {
        exec: ExecutorConfig {
            window_ratio: 8.0,
            cache_pages: bed.rtree.layout().page_count(),
            ..ExecutorConfig::default()
        },
        shards: 8,
        schedule,
        admission: AdmissionControl::unlimited(),
        batch: BatchPlan { enabled: batched },
    }
}

#[test]
fn disabled_batching_is_the_default_and_reports_no_batch_block() {
    let (bed, streams) = bed_and_streams(3);
    let ctx = bed.ctx_rtree();
    let config = MultiSessionConfig::default();
    assert!(!config.batch.enabled, "batching must be opt-in");
    let report = MultiSessionExecutor::new(ample_config(&bed, Schedule::RoundRobin, false))
        .run(&ctx, scout_sessions(&streams));
    assert!(report.batch.is_none(), "batch-off runs must not attach a batch report");
}

#[test]
fn batched_off_render_is_byte_identical_to_the_default_config() {
    // `BatchPlan { enabled: false }` must select the exact pre-batching
    // code path — same code, same bytes at the deterministic widths, and
    // the same totals at wider crews (where even the unbatched engine's
    // disk-busy line is interleave-dependent).
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    for schedule in [Schedule::RoundRobin, Schedule::WorkStealing { workers: 1 }] {
        let mut default_config = ample_config(&bed, schedule, false);
        default_config.batch = BatchPlan::default();
        let baseline =
            MultiSessionExecutor::new(default_config).run(&ctx, scout_sessions(&streams)).render();
        let off = MultiSessionExecutor::new(ample_config(&bed, schedule, false))
            .run(&ctx, scout_sessions(&streams))
            .render();
        assert_eq!(off, baseline, "{schedule:?}");
    }
    let mut default_config = ample_config(&bed, Schedule::WorkStealing { workers: 4 }, false);
    default_config.batch = BatchPlan::default();
    let baseline = MultiSessionExecutor::new(default_config).run(&ctx, scout_sessions(&streams));
    let off =
        MultiSessionExecutor::new(ample_config(&bed, Schedule::WorkStealing { workers: 4 }, false))
            .run(&ctx, scout_sessions(&streams));
    assert_eq!(off.total_pages(), baseline.total_pages());
    assert_eq!(off.total_pages_hit(), baseline.total_pages_hit());
}

#[test]
fn batched_width1_reruns_are_byte_identical() {
    let (bed, streams) = bed_and_streams(5);
    let ctx = bed.ctx_rtree();
    for schedule in [Schedule::RoundRobin, Schedule::WorkStealing { workers: 1 }] {
        let engine = MultiSessionExecutor::new(ample_config(&bed, schedule, true));
        let a = engine.run(&ctx, scout_sessions(&streams));
        let b = engine.run(&ctx, scout_sessions(&streams));
        assert_eq!(a.render(), b.render(), "{schedule:?}: batched rerun diverged");
        assert!((a.disk_busy_us - b.disk_busy_us).abs() < 1e-12, "{schedule:?}");
        let (ra, rb) = (a.batch.expect("batch report"), b.batch.expect("batch report"));
        assert_eq!(
            (ra.batches, ra.staged, ra.unique_pages, ra.coalesced, ra.failed_reads),
            (rb.batches, rb.staged, rb.unique_pages, rb.coalesced, rb.failed_reads),
            "{schedule:?}: batch counters diverged"
        );
    }
}

#[test]
fn batched_round_robin_matches_width1_work_stealing_byte_for_byte() {
    // The batched width-1 oracle: round-robin and a one-worker crew run
    // the exact same in-order batched loop.
    let (bed, streams) = bed_and_streams(5);
    let ctx = bed.ctx_rtree();
    let rr = MultiSessionExecutor::new(ample_config(&bed, Schedule::RoundRobin, true))
        .run(&ctx, scout_sessions(&streams));
    let ws =
        MultiSessionExecutor::new(ample_config(&bed, Schedule::WorkStealing { workers: 1 }, true))
            .run(&ctx, scout_sessions(&streams));
    assert_eq!(rr.render(), ws.render(), "batched width-1 M:N diverged from batched round-robin");
    assert!((rr.disk_busy_us - ws.disk_busy_us).abs() < 1e-12);
}

#[test]
fn batched_pages_hit_matches_the_unbatched_oracle_at_every_width() {
    // Under the eviction-free guard, coalescing and elevator reordering
    // change *when* pages are read, never *whether* a result page was in
    // the shared cache — totals and per-session hit accounting must be
    // exactly the unbatched engine's (DESIGN.md §12).
    let (bed, streams) = bed_and_streams(8);
    let ctx = bed.ctx_rtree();
    let oracle = MultiSessionExecutor::new(ample_config(&bed, Schedule::RoundRobin, false))
        .run(&ctx, scout_sessions(&streams));
    assert_eq!(oracle.cache.evictions, 0, "precondition violated: oracle run evicted");

    let mut schedules = vec![Schedule::RoundRobin];
    schedules.extend([1usize, 2, 4].map(|workers| Schedule::WorkStealing { workers }));
    for schedule in schedules {
        let batched = MultiSessionExecutor::new(ample_config(&bed, schedule, true))
            .run(&ctx, scout_sessions(&streams));
        assert_eq!(batched.cache.evictions, 0, "precondition violated: {schedule:?} evicted");
        assert_eq!(batched.total_pages(), oracle.total_pages(), "{schedule:?}");
        assert_eq!(
            batched.total_pages_hit(),
            oracle.total_pages_hit(),
            "{schedule:?}: batched pages-hit drifted from the unbatched oracle"
        );
        assert_eq!(batched.cache.hits, oracle.cache.hits, "{schedule:?}: cache hits drifted");
        // Coalesced waiters are booked as coalesced hits, not misses: the
        // unbatched engine's duplicate misses split into unique misses +
        // coalesced hits, and total accesses stay identical.
        assert_eq!(
            batched.cache.accesses(),
            oracle.cache.accesses(),
            "{schedule:?}: access accounting drifted"
        );
        assert_eq!(
            batched.cache.misses + batched.cache.coalesced_hits,
            oracle.cache.misses,
            "{schedule:?}: unique-miss + coalesced accounting drifted"
        );
        for (a, b) in oracle.sessions.iter().zip(&batched.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.pages_hit, b.pages_hit,
                "session {} hit accounting diverged under {schedule:?}",
                a.id
            );
            assert_eq!(a.queries, b.queries, "session {} query count", a.id);
        }
    }
}

#[test]
fn identical_streams_coalesce_into_single_flight_reads() {
    // K sessions replaying the *same* stream with no prefetching: serve
    // never populates the cache (§7.1), so every result page is demanded
    // by all K sessions each round. The demand lane must read each page
    // once and fan it out — K−1 coalesced waiters per staged page — and
    // the cache must book those waiters as coalesced hits.
    let (bed, streams) = bed_and_streams(1);
    let ctx = bed.ctx_rtree();
    let shared = streams[0].clone();
    let k = 6usize;
    let sessions: Vec<Session> =
        (0..k).map(|id| Session::new(id, Box::new(NoPrefetch), shared.clone())).collect();
    let report = MultiSessionExecutor::new(ample_config(&bed, Schedule::RoundRobin, true))
        .run(&ctx, sessions);
    let batch = report.batch.expect("batch report");
    assert!(batch.batches > 0, "no batches were submitted");
    assert!(batch.unique_pages > 0, "no pages were staged");
    assert_eq!(
        batch.staged,
        batch.unique_pages + batch.coalesced,
        "every staged request is either a unique read or a coalesced waiter"
    );
    assert_eq!(
        batch.coalesced,
        batch.unique_pages * (k as u64 - 1),
        "identical streams must coalesce K-1 waiters behind every unique read"
    );
    assert_eq!(
        report.cache.coalesced_hits, batch.coalesced,
        "cache coalesced-hit accounting must match the demand lane"
    );
    assert_eq!(batch.failed_reads, 0, "no faults were injected");
    // All K sessions see identical per-session accounting.
    for s in &report.sessions {
        assert_eq!(s.pages_total, report.sessions[0].pages_total);
        assert_eq!(s.pages_hit, report.sessions[0].pages_hit);
    }
}
