//! Chaos properties of the fault-injected I/O path (ISSUE 8): under any
//! fault seed the engine must neither panic, deadlock nor serve corrupt
//! pages at widths 1/2/4; a zero-fault configuration must behave exactly
//! like the pre-fault executor; and a fault schedule is a pure function
//! of its seed, so same-seed reruns reproduce the same outcomes.

use scout::prelude::*;
use scout_synth::{generate_sequences, SequenceParams};

/// The same small neuron bed the multi-session acceptance tests use: K
/// guided sequences over one tissue block, one per session. The workload
/// seed honors `SCOUT_BENCH_SEED` so the CI chaos matrix marches the
/// fault schedules over different query streams, not just one.
fn bed_and_streams(k: usize) -> (TestBed, Vec<Vec<scout::geometry::QueryRegion>>) {
    let workload_seed =
        std::env::var("SCOUT_BENCH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(23u64);
    let dataset = scout_synth::generate_neurons(
        &scout_synth::NeuronParams { neuron_count: 8, fiber_steps: 220, ..Default::default() },
        11,
    );
    let bed = TestBed::with_page_capacity(dataset, 32);
    let params = SequenceParams { length: 8, ..SequenceParams::sensitivity_default() };
    let sequences = generate_sequences(&bed.dataset, &params, k, workload_seed);
    let regions = region_lists(&sequences);
    (bed, regions)
}

fn scout_sessions(streams: &[Vec<scout::geometry::QueryRegion>]) -> Vec<Session> {
    streams
        .iter()
        .enumerate()
        .map(|(id, regions)| {
            Session::new(id, Box::new(Scout::with_seed(0xBEEF + id as u64)), regions.clone())
        })
        .collect()
}

/// Eviction-free fleet config (see DESIGN.md §5) with the given fault
/// plan installed.
fn chaos_config(bed: &TestBed, schedule: Schedule, faults: FaultPlan) -> MultiSessionConfig {
    MultiSessionConfig {
        exec: ExecutorConfig {
            window_ratio: 8.0,
            cache_pages: bed.rtree.layout().page_count(),
            faults,
            ..ExecutorConfig::default()
        },
        shards: 8,
        schedule,
        admission: AdmissionControl::unlimited(),
        ..Default::default()
    }
}

/// A noisy-but-survivable schedule: every fault category active at rates
/// well above the defaults, so eight queries per session reliably hit
/// retries, drops and the occasional unrecoverable read.
fn rough_weather(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        transient_rate: 0.10,
        corrupt_rate: 0.03,
        stuck_rate: 0.01,
        slow_rate: 0.05,
        slow_multiplier: 8.0,
    }
}

/// The per-session quantities that must survive any interleaving. Wider
/// crews are *not* byte-reproducible under faults, by design: sessions
/// share one clock (latency is order-dependent), and dropped prefetch
/// reads race with sibling inserts on shared-cache membership — whether
/// a faulty prefetch read even happens depends on who got there first,
/// so hit counts and downstream fault tallies can drift between equally
/// correct schedules. What cannot drift: which pages each query requests
/// (the stream is fixed) and how many queries each session completes
/// (every query either serves or fails cleanly — none may vanish).
fn invariant_fingerprint(report: &MultiSessionReport) -> Vec<(usize, usize, u64)> {
    report.sessions.iter().map(|s| (s.id, s.queries, s.pages_total)).collect()
}

#[test]
fn any_fault_seed_survives_every_width() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    for seed in [1u64, 2, 3, 5, 8, 13, 0xDEAD, 0xC0FFEE] {
        for workers in [1usize, 2, 4] {
            let config = chaos_config(
                &bed,
                Schedule::WorkStealing { workers },
                FaultPlan::injecting(rough_weather(seed)),
            );
            let report = MultiSessionExecutor::new(config).run(&ctx, scout_sessions(&streams));
            // Liveness: every session ran its full stream (failed queries
            // surface as ServeOutcome::Failed, never as a stall).
            assert!(
                report.sessions.iter().all(|s| s.queries == 8),
                "seed {seed:#x} width {workers}: a session stalled"
            );
            let faults = report.faults.expect("fault injection was enabled");
            // Safety: the verified read path catches every corrupt page.
            assert_eq!(
                faults.corruption_served, 0,
                "seed {seed:#x} width {workers}: corrupt page served"
            );
            // The schedule actually did something at these rates.
            assert!(faults.injected() > 0, "seed {seed:#x} width {workers}: no faults injected");
            // The report renders with the fault block attached.
            let rendered = report.render();
            assert!(rendered.contains("faults:"), "seed {seed:#x} width {workers}: {rendered}");
        }
    }
}

#[test]
fn zero_rate_injection_matches_the_plain_run_exactly() {
    let (bed, streams) = bed_and_streams(3);
    let ctx = bed.ctx_rtree();
    let plain =
        MultiSessionExecutor::new(chaos_config(&bed, Schedule::RoundRobin, FaultPlan::default()))
            .run(&ctx, scout_sessions(&streams));
    let armed = MultiSessionExecutor::new(chaos_config(
        &bed,
        Schedule::RoundRobin,
        FaultPlan::injecting(FaultConfig::none(99)),
    ))
    .run(&ctx, scout_sessions(&streams));

    // A zero-rate injector must not perturb a single observable metric:
    // same pages, same hits, same simulated latency to the last bit.
    assert_eq!(plain.sessions.len(), armed.sessions.len());
    for (p, a) in plain.sessions.iter().zip(&armed.sessions) {
        assert_eq!(
            (p.id, p.queries, p.pages_total, p.pages_hit),
            (a.id, a.queries, a.pages_total, a.pages_hit)
        );
        assert_eq!(p.response_us.to_bits(), a.response_us.to_bits(), "session {}", p.id);
        assert!(p.faults.is_none(), "plain run grew a fault report");
        let f = a.faults.expect("armed run lost its fault report");
        assert_eq!(f.injected(), 0);
        assert!(f.reads_attempted > 0);
    }
    assert_eq!(plain.disk_busy_us.to_bits(), armed.disk_busy_us.to_bits());

    // With injection disabled the render carries no fault block at all —
    // byte-identical to the pre-fault (PR 7) report format.
    assert!(!plain.render().contains("faults:"));
    assert!(armed.render().contains("faults:"));
}

#[test]
fn same_fault_seed_reruns_byte_identically_at_width_one() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    let plan = FaultPlan::injecting(rough_weather(0xFEED));
    let rr = MultiSessionExecutor::new(chaos_config(&bed, Schedule::RoundRobin, plan));
    let a = rr.run(&ctx, scout_sessions(&streams)).render();
    let b = rr.run(&ctx, scout_sessions(&streams)).render();
    assert_eq!(a, b, "same fault seed, same schedule, different trace");

    // Width-1 work stealing replays the identical serialized order, so the
    // fault schedule (keyed on page/epoch/attempt, not on arrival time)
    // reproduces the identical report.
    let ws =
        MultiSessionExecutor::new(chaos_config(&bed, Schedule::WorkStealing { workers: 1 }, plan));
    let c = ws.run(&ctx, scout_sessions(&streams)).render();
    assert_eq!(a, c, "width-1 work stealing diverged from round-robin under faults");
}

#[test]
fn width_two_and_four_preserve_the_interleaving_invariants() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    let plan = FaultPlan::injecting(rough_weather(0xFEED));
    let rr = MultiSessionExecutor::new(chaos_config(&bed, Schedule::RoundRobin, plan))
        .run(&ctx, scout_sessions(&streams));
    let reference = invariant_fingerprint(&rr);
    // A deterministic slow-only schedule (no read ever fails, so no
    // membership race): wider crews must then reproduce the serialized
    // hit totals exactly, faults and all — isolating the *only* licensed
    // source of divergence to dropped reads. The multiplier stays small
    // so window budgets remain non-binding (the §5 precondition).
    let slow_only = FaultPlan::injecting(FaultConfig {
        slow_rate: 0.2,
        slow_multiplier: 2.0,
        ..FaultConfig::none(0xFEED)
    });
    let rr_slow = MultiSessionExecutor::new(chaos_config(&bed, Schedule::RoundRobin, slow_only))
        .run(&ctx, scout_sessions(&streams));
    for workers in [2usize, 4] {
        for rerun in 0..2 {
            let report = MultiSessionExecutor::new(chaos_config(
                &bed,
                Schedule::WorkStealing { workers },
                plan,
            ))
            .run(&ctx, scout_sessions(&streams));
            assert_eq!(
                invariant_fingerprint(&report),
                reference,
                "width {workers} rerun {rerun}: queries or requested pages diverged"
            );
            assert_eq!(report.cache.evictions, 0, "eviction-free precondition violated");
            let faults = report.faults.expect("fault injection was enabled");
            assert_eq!(faults.corruption_served, 0, "width {workers} rerun {rerun}");

            let slow = MultiSessionExecutor::new(chaos_config(
                &bed,
                Schedule::WorkStealing { workers },
                slow_only,
            ))
            .run(&ctx, scout_sessions(&streams));
            for (a, b) in rr_slow.sessions.iter().zip(&slow.sessions) {
                assert_eq!(
                    (a.pages_total, a.pages_hit),
                    (b.pages_total, b.pages_hit),
                    "width {workers} rerun {rerun}: slow-only faults perturbed session {}",
                    a.id
                );
            }
            let sf = slow.faults.expect("fault injection was enabled");
            assert!(sf.injected_slow > 0, "width {workers}: slow schedule never fired");
            assert_eq!(sf.failed_queries, 0, "width {workers}: a slow read failed a query");
        }
    }
}

// ---------------------------------------------------------------------------
// ISSUE 9: batched I/O submission under fault injection
// ---------------------------------------------------------------------------

/// `chaos_config` with the demand/window batch lanes enabled.
fn batched_chaos_config(
    bed: &TestBed,
    schedule: Schedule,
    faults: FaultPlan,
) -> MultiSessionConfig {
    MultiSessionConfig { batch: BatchPlan { enabled: true }, ..chaos_config(bed, schedule, faults) }
}

#[test]
fn batched_any_fault_seed_survives_every_width() {
    // The batched mirror of `any_fault_seed_survives_every_width`: the
    // same 8 seeds × widths 1/2/4 liveness-and-safety sweep with the
    // demand/window lanes turned on. Coalesced failures fan out to every
    // waiter as a clean `ServeOutcome::Failed`, never a stall, and the
    // verified read path still catches every corrupt page.
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    for seed in [1u64, 2, 3, 5, 8, 13, 0xDEAD, 0xC0FFEE] {
        for workers in [1usize, 2, 4] {
            let config = batched_chaos_config(
                &bed,
                Schedule::WorkStealing { workers },
                FaultPlan::injecting(rough_weather(seed)),
            );
            let report = MultiSessionExecutor::new(config).run(&ctx, scout_sessions(&streams));
            assert!(
                report.sessions.iter().all(|s| s.queries == 8),
                "seed {seed:#x} width {workers}: a session stalled under batching"
            );
            let faults = report.faults.expect("fault injection was enabled");
            assert_eq!(
                faults.corruption_served, 0,
                "seed {seed:#x} width {workers}: corrupt page served under batching"
            );
            assert!(faults.injected() > 0, "seed {seed:#x} width {workers}: no faults injected");
            assert!(report.batch.expect("batch report").batches > 0);
        }
    }
}

#[test]
fn batched_fault_seed_reruns_byte_identically_at_width_one() {
    let (bed, streams) = bed_and_streams(4);
    let ctx = bed.ctx_rtree();
    let plan = FaultPlan::injecting(rough_weather(0xFEED));
    let rr = MultiSessionExecutor::new(batched_chaos_config(&bed, Schedule::RoundRobin, plan));
    let a = rr.run(&ctx, scout_sessions(&streams)).render();
    let b = rr.run(&ctx, scout_sessions(&streams)).render();
    assert_eq!(a, b, "batched same-seed rerun diverged");
    let ws = MultiSessionExecutor::new(batched_chaos_config(
        &bed,
        Schedule::WorkStealing { workers: 1 },
        plan,
    ));
    let c = ws.run(&ctx, scout_sessions(&streams)).render();
    assert_eq!(a, c, "batched width-1 work stealing diverged from batched round-robin");
}

#[test]
fn coalesced_failure_fans_one_error_to_every_waiter() {
    // K sessions replaying the *same* stream over a device where stuck
    // pages are common. Stuck pages are a device property — keyed on
    // (seed, page), independent of which lane's disk touches them — so a
    // page the batch disk cannot read is equally unreadable by every
    // waiter's per-session retry continuation. Each waiter must therefore
    // fail the *same* queries: one `IoError` per waiter, identical
    // per-session failure counts, and retries charged per waiter (K
    // sessions × own retry ladder), not once per batch.
    let (bed, streams) = bed_and_streams(1);
    let ctx = bed.ctx_rtree();
    let shared = streams[0].clone();
    let k = 4usize;
    let weather = FaultConfig {
        seed: 7,
        transient_rate: 0.0,
        corrupt_rate: 0.0,
        stuck_rate: 0.34,
        slow_rate: 0.0,
        slow_multiplier: 1.0,
    };
    let sessions: Vec<Session> =
        (0..k).map(|id| Session::new(id, Box::new(NoPrefetch), shared.clone())).collect();
    let report = MultiSessionExecutor::new(batched_chaos_config(
        &bed,
        Schedule::RoundRobin,
        FaultPlan::injecting(weather),
    ))
    .run(&ctx, sessions);
    assert!(report.sessions.iter().all(|s| s.queries == shared.len()), "a waiter stalled");
    let per_session: Vec<u64> = report
        .sessions
        .iter()
        .map(|s| s.faults.as_ref().expect("fault injection was enabled").failed_queries)
        .collect();
    assert!(per_session[0] > 0, "a 34% stuck device failed no queries");
    assert!(
        per_session.iter().all(|&f| f == per_session[0]),
        "identical waiters must fail identically: {per_session:?}"
    );
    // Retries are per-waiter: every session walked its own retry ladder
    // against the shared stuck pages, so the fleet total is K times a
    // single session's, never one ladder amortized across the batch.
    let solo = MultiSessionExecutor::new(batched_chaos_config(
        &bed,
        Schedule::RoundRobin,
        FaultPlan::injecting(weather),
    ))
    .run(&ctx, vec![Session::new(0, Box::new(NoPrefetch), shared.clone())]);
    let solo_failed =
        solo.sessions[0].faults.as_ref().expect("fault injection was enabled").failed_queries;
    assert_eq!(per_session[0], solo_failed, "fan-out changed which queries fail");
    let session_retries: u64 = report
        .sessions
        .iter()
        .map(|s| s.faults.as_ref().expect("fault injection was enabled").retries)
        .sum();
    let solo_retries =
        solo.sessions[0].faults.as_ref().expect("fault injection was enabled").retries;
    assert_eq!(
        session_retries,
        solo_retries * k as u64,
        "per-waiter retry ladders must not be amortized across the batch"
    );
}

#[test]
fn stuck_heavy_weather_degrades_instead_of_hanging() {
    let (bed, streams) = bed_and_streams(2);
    let ctx = bed.ctx_rtree();
    // A device where a third of all pages never read back: most queries
    // fail, the breaker should open, and the run must still terminate.
    let config = FaultConfig {
        seed: 7,
        transient_rate: 0.2,
        corrupt_rate: 0.0,
        stuck_rate: 0.34,
        slow_rate: 0.0,
        slow_multiplier: 1.0,
    };
    let report = MultiSessionExecutor::new(chaos_config(
        &bed,
        Schedule::WorkStealing { workers: 2 },
        FaultPlan::injecting(config),
    ))
    .run(&ctx, scout_sessions(&streams));
    assert!(report.sessions.iter().all(|s| s.queries == 8), "a stuck page stalled a session");
    let faults = report.faults.expect("fault injection was enabled");
    assert!(faults.failed_queries > 0, "a 34% stuck device produced no failed queries");
    assert!(faults.injected_stuck > 0);
    assert_eq!(faults.corruption_served, 0);
    // Degradation is visible in the render, not just the counters.
    let rendered = report.render();
    assert!(rendered.contains("failed queries"), "{rendered}");
}
