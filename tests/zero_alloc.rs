//! Steady-state allocation accounting for the query hot path (ISSUE 3 +
//! ISSUE 4).
//!
//! The graph-build phase of `Session::step` — `ResultGraph::build_grid_hash`
//! / `build_explicit` plus `components_into` against the session's
//! [`QueryScratch`] arena — must perform **zero** heap allocations once the
//! buffers have warmed to the workload. The same holds for the
//! *incremental* build path (ISSUE 4): steady-state delta repairs over
//! sliding result windows, for both SCOUT-style full result sets and
//! SCOUT-OPT-style sparse reached subsets, including the overlap-fallback
//! full-rebuild-with-capture case. A counting global allocator wraps the
//! system allocator; after a warmup tour over every query of the
//! sequence, re-running the builds must leave the counter untouched.
//!
//! This binary holds exactly one `#[test]` on purpose: the counter is
//! process-global, so a concurrently running sibling test would pollute
//! the measured window.

use scout::core::ResultGraph;
use scout::geometry::{Aspect, ObjectAdjacency, QueryRegion};
use scout::index::{RTree, SpatialIndex};
use scout::predict::HybridPrefetcher;
use scout::sim::{Prefetcher, QueryScratch, SimContext};
use scout_synth::{generate_neurons, NeuronParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc acquires memory too: growing a Vec in the measured
        // window must count.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_graph_build_allocates_nothing() {
    // A small tissue block and a guided sweep of queries along it.
    let dataset = generate_neurons(
        &NeuronParams { neuron_count: 6, fiber_steps: 150, ..Default::default() },
        17,
    );
    let objects = &dataset.objects;
    let tree = RTree::bulk_load_with_capacity(objects, 16);
    let side = dataset.bounds.extent().x * 0.2;
    let regions: Vec<QueryRegion> = (0..6)
        .map(|i| {
            let t = (i as f64 + 0.5) / 6.0;
            let c = dataset.bounds.min + (dataset.bounds.max - dataset.bounds.min) * t;
            QueryRegion::new(c, side * side * side, Aspect::Cube)
        })
        .collect();
    let results: Vec<Vec<scout::geometry::ObjectId>> =
        regions.iter().map(|r| tree.range_query(objects, r).objects).collect();
    assert!(
        results.iter().any(|r| r.len() > 50),
        "fixture too sparse: results {:?}",
        results.iter().map(Vec::len).collect::<Vec<_>>()
    );
    // A synthetic explicit adjacency (chain within each fiber's id range).
    let lists: Vec<Vec<scout::geometry::ObjectId>> = (0..objects.len())
        .map(|i| {
            let mut l = Vec::new();
            if i > 0 {
                l.push(scout::geometry::ObjectId(i as u32 - 1));
            }
            if i + 1 < objects.len() {
                l.push(scout::geometry::ObjectId(i as u32 + 1));
            }
            l
        })
        .collect();
    let adjacency = ObjectAdjacency::from_lists(&lists);

    let mut scratch = QueryScratch::new();
    let mut graph = ResultGraph::default();

    // Warmup tour: every query once, both build paths, so every buffer
    // reaches the workload's high-water capacity.
    let resolution = 32_768;
    let simplification = scout::geometry::Simplification::Segment;
    for (region, ids) in regions.iter().zip(&results) {
        graph.build_grid_hash(&mut scratch, objects, ids, region, resolution, simplification);
        graph.components_into(&mut scratch.components, &mut scratch.stack);
        graph.build_explicit(&mut scratch, &adjacency, ids);
        graph.components_into(&mut scratch.components, &mut scratch.stack);
    }

    // Steady state: the same tour must not allocate at all.
    let before = allocations();
    for _ in 0..3 {
        for (region, ids) in regions.iter().zip(&results) {
            graph.build_grid_hash(&mut scratch, objects, ids, region, resolution, simplification);
            let n = graph.components_into(&mut scratch.components, &mut scratch.stack);
            std::hint::black_box(n);
            graph.build_explicit(&mut scratch, &adjacency, ids);
            let n = graph.components_into(&mut scratch.components, &mut scratch.stack);
            std::hint::black_box(n);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "graph-build phase allocated {} times in steady state",
        after - before
    );

    // --- Fork-join build passes (ISSUE 6) ----------------------------------
    //
    // The same grid-hash tour through the parallel passes: a forced part
    // width routes every build through per-worker staging, the fixed-order
    // histogram merges and the parallel row dedup. After the warmup tour
    // (which also pays any one-time pool/worker spawn cost) the staging
    // buffers have warmed like every other arena buffer and steady-state
    // parallel builds must allocate nothing either.
    let mut par_graph = ResultGraph::default();
    par_graph.set_build_threads(4);
    for (region, ids) in regions.iter().zip(&results) {
        par_graph.build_grid_hash(&mut scratch, objects, ids, region, resolution, simplification);
        par_graph.components_into(&mut scratch.components, &mut scratch.stack);
    }
    let before = allocations();
    for _ in 0..3 {
        for (region, ids) in regions.iter().zip(&results) {
            par_graph.build_grid_hash(
                &mut scratch,
                objects,
                ids,
                region,
                resolution,
                simplification,
            );
            let n = par_graph.components_into(&mut scratch.components, &mut scratch.stack);
            std::hint::black_box(n);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "parallel graph-build passes allocated {} times in steady state",
        after - before
    );
    // And the parallel build produced the same graph as the serial one.
    graph.build_grid_hash(
        &mut scratch,
        objects,
        &results[regions.len() - 1],
        &regions[regions.len() - 1],
        resolution,
        simplification,
    );
    assert_eq!(par_graph.vertex_count(), graph.vertex_count());
    assert_eq!(par_graph.edge_count(), graph.edge_count());

    // --- Incremental maintenance (ISSUE 4) ---------------------------------
    //
    // Sliding result windows under one fixed lattice: the region stays
    // put (a fixed analysis viewport), the result membership slides along
    // the tissue. SCOUT's path uses the full windows; SCOUT-OPT's sparse
    // construction is modeled by every-other-object subsets of the same
    // windows (a thinner reached set in the same stable relative order).
    let all_ids: Vec<scout::geometry::ObjectId> = objects.iter().map(|o| o.id).collect();
    let n = all_ids.len();
    let w = n / 2;
    let advance = (w / 8).max(1);
    let full_windows: Vec<&[scout::geometry::ObjectId]> =
        (0..8).map(|k| &all_ids[k * advance..k * advance + w]).collect();
    let sparse_windows: Vec<Vec<scout::geometry::ObjectId>> = full_windows
        .iter()
        .map(|win| win.iter().copied().filter(|o| o.0 % 2 == 0).collect())
        .collect();
    let viewport = QueryRegion::from_aabb(dataset.bounds);

    let mut scout_graph = ResultGraph::default();
    let mut opt_graph = ResultGraph::default();
    let tour =
        |scout_graph: &mut ResultGraph, opt_graph: &mut ResultGraph, scratch: &mut QueryScratch| {
            for (win, sparse) in full_windows.iter().zip(&sparse_windows) {
                scout_graph.build_grid_hash_incremental(
                    scratch,
                    objects,
                    win,
                    &viewport,
                    resolution,
                    simplification,
                    0.5,
                );
                let c = scout_graph.components_into(&mut scratch.components, &mut scratch.stack);
                std::hint::black_box(c);
                opt_graph.build_grid_hash_incremental(
                    scratch,
                    objects,
                    sparse,
                    &viewport,
                    resolution,
                    simplification,
                    0.5,
                );
                let c = opt_graph.components_into(&mut scratch.components, &mut scratch.stack);
                std::hint::black_box(c);
            }
        };

    // Warmup tours: grow the graph buffers, the persistent caches and the
    // delta scratch to the workload's high-water capacity. Two tours, not
    // one: the cache's repair double buffers swap roles every query, and
    // window sizes vary, so each of the two buffers behind `runs`/`cells`
    // must see the largest window at least once.
    for _ in 0..2 {
        tour(&mut scout_graph, &mut opt_graph, &mut scratch);
    }

    // Steady state: repeated tours — repairs within a tour, plus the
    // low-overlap fallback (full rebuild + cache capture) when a tour
    // wraps from the last window back to the first — allocate nothing.
    let before = allocations();
    for _ in 0..3 {
        tour(&mut scout_graph, &mut opt_graph, &mut scratch);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "incremental graph maintenance allocated {} times in steady state",
        after - before
    );
    // And the steady-state tours actually exercised the repair path.
    assert!(
        scout_graph.cache_stats().incremental_builds >= 3 * (full_windows.len() as u64 - 1),
        "SCOUT windows unexpectedly fell back: {:?}",
        scout_graph.cache_stats()
    );
    assert!(
        opt_graph.cache_stats().incremental_builds >= 3 * (full_windows.len() as u64 - 1),
        "sparse windows unexpectedly fell back: {:?}",
        opt_graph.cache_stats()
    );

    // --- Hybrid adaptive layer (ISSUE 5) -----------------------------------
    //
    // A steady-state Hybrid tour over a revisit loop: the observe path the
    // prediction subsystem adds on top of SCOUT — Markov model update,
    // coverage accounting + feedback, and the merged history prediction
    // (`HybridPrefetcher::digest_history`) — must perform zero allocations
    // once the model table (fixed at construction), the staging buffers
    // and the scratch extraction buffers have warmed. SCOUT's own plan
    // assembly allocates by design and is measured by the graph-build
    // sections above, so the steady-state window drives the adaptive layer
    // in isolation.
    let ctx = SimContext::new(objects, &tree, dataset.bounds);
    let query_results: Vec<scout::index::QueryResult> =
        regions.iter().map(|r| tree.range_query(objects, r)).collect();
    let mut hybrid = HybridPrefetcher::with_defaults();
    hybrid.reset();

    // Warmup: full observe + plan laps, so every buffer — SCOUT's, the
    // Markov extraction frontier, the staging vectors, the controller's
    // inputs — reaches the loop's high-water capacity.
    for _ in 0..4 {
        for (region, result) in regions.iter().zip(&query_results) {
            hybrid.observe_with_scratch(&ctx, region, result, &mut scratch);
            let plan = hybrid.plan(&ctx);
            std::hint::black_box(plan.requests.len());
        }
    }

    // Steady state: the adaptive layer alone, three more laps.
    let before = allocations();
    for _ in 0..3 {
        for result in &query_results {
            let work = hybrid.digest_history(&ctx, result, &mut scratch);
            std::hint::black_box(work);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "hybrid adaptive observe path allocated {} times in steady state",
        after - before
    );
    // And the measured laps exercised a live model and controller.
    assert!(hybrid.markov().transitions() > 0, "Markov model never trained");
    assert!(hybrid.controller().observations() >= 3 * regions.len() as u64);

    // --- Batch queue steady state (ISSUE 9) --------------------------------
    //
    // One round of the batched I/O lane — stage a phase's pages (unique
    // misses, coalesced duplicates, and owner-tagged window requests),
    // submit in elevator order, fan outcomes back out, recycle — must
    // allocate nothing once the slot/waiter/outcome buffers and the
    // single-flight page table have warmed to the phase's high-water
    // occupancy.
    use scout::storage::{DiskModel, DiskProfile, IoBatcher, PageId};
    let mut batcher = IoBatcher::new(DiskModel::new(DiskProfile::default()));
    let mut fetched: Vec<(PageId, Result<f64, scout::storage::FailedRead>)> = Vec::new();
    let mut slots: Vec<u32> = Vec::new();
    let round = |batcher: &mut IoBatcher,
                 slots: &mut Vec<u32>,
                 fetched: &mut Vec<(PageId, Result<f64, scout::storage::FailedRead>)>,
                 epoch: u64| {
        slots.clear();
        // Staged in descending order so the elevator sort does real work;
        // every page staged twice, so the coalescing table fans out.
        for p in (0..96u32).rev() {
            let (slot, _) = batcher.stage(PageId(p));
            slots.push(slot);
            let (dup, coalesced) = batcher.stage(PageId(p));
            assert_eq!(dup, slot);
            assert!(coalesced);
        }
        for p in 96..128u32 {
            assert!(batcher.try_stage(PageId(p), p, p.is_multiple_of(2)));
        }
        let io_us = batcher.submit(1, epoch);
        std::hint::black_box(io_us);
        batcher.copy_outcomes(slots, fetched);
        assert_eq!(fetched.len(), 96);
        batcher.begin_phase();
    };
    round(&mut batcher, &mut slots, &mut fetched, 0);
    let before = allocations();
    for epoch in 1..4u64 {
        round(&mut batcher, &mut slots, &mut fetched, epoch);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "batch-queue round allocated {} times in steady state",
        after - before
    );
    let report = batcher.report();
    assert_eq!(report.batches, 4);
    assert_eq!(report.unique_pages, 4 * 128);
    assert_eq!(report.coalesced, 4 * 96);

    // --- Telemetry recording steady state (ISSUE 10) -----------------------
    //
    // The armed hot path — counter bumps, histogram records, gauge raises
    // and flight-recorder event records — must allocate nothing in steady
    // state: counters/gauges/histograms are fixed-size atomics by
    // construction, and the event ring pre-allocates its capacity and
    // overwrites in place once it has wrapped.
    use scout::telemetry::{
        CounterId, Event, FlightRecorder, GaugeId, HistogramId, MetricsRegistry,
    };
    let registry = MetricsRegistry::new();
    let mut ring = FlightRecorder::with_capacity(7, 64);
    // Warmup: wrap the ring once, so every later record is an overwrite.
    for i in 0..96u32 {
        ring.record(i as f64, Event::QueryServed { query: i, pages: 3, hits: 1, failed: false });
    }
    let before = allocations();
    for i in 0..1_000u64 {
        registry.incr(CounterId::QueriesServed);
        registry.add(CounterId::PagesRequested, 7);
        registry.gauge_raise(GaugeId::ResidentSessions, i);
        registry.record(HistogramId::ResidualUs, (i * 37) as f64);
        ring.record(i as f64, Event::WindowOpened { budget_us: i as f64 });
        ring.record(i as f64, Event::SessionParked { worker: (i % 4) as u32 });
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "telemetry recording allocated {} times in steady state",
        after - before
    );
    assert_eq!(registry.counter(CounterId::QueriesServed), 1_000);
    assert_eq!(registry.counter(CounterId::PagesRequested), 7_000);
    assert!(ring.dropped() > 0, "the ring must have wrapped during the tour");
}
