//! Steady-state allocation accounting for the query hot path (ISSUE 3).
//!
//! The graph-build phase of `Session::step` — `ResultGraph::build_grid_hash`
//! / `build_explicit` plus `components_into` against the session's
//! [`QueryScratch`] arena — must perform **zero** heap allocations once the
//! buffers have warmed to the workload. A counting global allocator wraps
//! the system allocator; after a warmup tour over every query of the
//! sequence, re-running the builds must leave the counter untouched.
//!
//! This binary holds exactly one `#[test]` on purpose: the counter is
//! process-global, so a concurrently running sibling test would pollute
//! the measured window.

use scout::core::ResultGraph;
use scout::geometry::{Aspect, ObjectAdjacency, QueryRegion};
use scout::index::{RTree, SpatialIndex};
use scout::sim::QueryScratch;
use scout_synth::{generate_neurons, NeuronParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc acquires memory too: growing a Vec in the measured
        // window must count.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_graph_build_allocates_nothing() {
    // A small tissue block and a guided sweep of queries along it.
    let dataset = generate_neurons(
        &NeuronParams { neuron_count: 6, fiber_steps: 150, ..Default::default() },
        17,
    );
    let objects = &dataset.objects;
    let tree = RTree::bulk_load_with_capacity(objects, 16);
    let side = dataset.bounds.extent().x * 0.2;
    let regions: Vec<QueryRegion> = (0..6)
        .map(|i| {
            let t = (i as f64 + 0.5) / 6.0;
            let c = dataset.bounds.min + (dataset.bounds.max - dataset.bounds.min) * t;
            QueryRegion::new(c, side * side * side, Aspect::Cube)
        })
        .collect();
    let results: Vec<Vec<scout::geometry::ObjectId>> =
        regions.iter().map(|r| tree.range_query(objects, r).objects).collect();
    assert!(
        results.iter().any(|r| r.len() > 50),
        "fixture too sparse: results {:?}",
        results.iter().map(Vec::len).collect::<Vec<_>>()
    );
    // A synthetic explicit adjacency (chain within each fiber's id range).
    let lists: Vec<Vec<scout::geometry::ObjectId>> = (0..objects.len())
        .map(|i| {
            let mut l = Vec::new();
            if i > 0 {
                l.push(scout::geometry::ObjectId(i as u32 - 1));
            }
            if i + 1 < objects.len() {
                l.push(scout::geometry::ObjectId(i as u32 + 1));
            }
            l
        })
        .collect();
    let adjacency = ObjectAdjacency::from_lists(&lists);

    let mut scratch = QueryScratch::new();
    let mut graph = ResultGraph::default();

    // Warmup tour: every query once, both build paths, so every buffer
    // reaches the workload's high-water capacity.
    let resolution = 32_768;
    let simplification = scout::geometry::Simplification::Segment;
    for (region, ids) in regions.iter().zip(&results) {
        graph.build_grid_hash(&mut scratch, objects, ids, region, resolution, simplification);
        graph.components_into(&mut scratch.components, &mut scratch.stack);
        graph.build_explicit(&mut scratch, &adjacency, ids);
        graph.components_into(&mut scratch.components, &mut scratch.stack);
    }

    // Steady state: the same tour must not allocate at all.
    let before = allocations();
    for _ in 0..3 {
        for (region, ids) in regions.iter().zip(&results) {
            graph.build_grid_hash(&mut scratch, objects, ids, region, resolution, simplification);
            let n = graph.components_into(&mut scratch.components, &mut scratch.stack);
            std::hint::black_box(n);
            graph.build_explicit(&mut scratch, &adjacency, ids);
            let n = graph.components_into(&mut scratch.components, &mut scratch.stack);
            std::hint::black_box(n);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "graph-build phase allocated {} times in steady state",
        after - before
    );
}
