//! Walkthrough visualization (§7.2.3): a neuroscientist flies along a
//! neuron fiber, issuing view-frustum queries for rendering. The example
//! shows how SCOUT's candidate set converges onto the followed structure
//! and how the cache-hit rate evolves query by query.
//!
//! Run with: `cargo run --example neuroscience_walkthrough --release`

use scout::prelude::*;

fn main() {
    let dataset = generate_neurons(&NeuronParams { neuron_count: 120, ..Default::default() }, 2026);
    let bed = TestBed::new(dataset);

    // Figure 10, "Visualization (High Quality)": 65 frustum queries of
    // 30 000 µm³, prefetch-window ratio 1.6 (ray tracing is slow, the disk
    // has time).
    let bench = scout::sim::workloads::VIS_HIGH;
    let sequence = generate_sequence_for(&bed, &bench);

    let config = ExecutorConfig { window_ratio: bench.window_ratio, ..Default::default() };
    let mut scout = Scout::with_defaults();
    let trace = run_sequence(&bed.ctx_rtree(), &mut scout, &sequence, &config);

    println!("query | result objs | candidates | hit rate | prefetched pages");
    println!("------+-------------+------------+----------+-----------------");
    for (i, q) in trace.queries.iter().enumerate() {
        println!(
            "{:5} | {:11} | {:10} | {:6.1} % | {:16}",
            i + 1,
            q.result_objects,
            q.prediction.candidates,
            q.hit_rate() * 100.0,
            q.prefetch_pages,
        );
    }
    println!(
        "\nsequence hit rate {:.1} % — the candidate set collapses onto the followed fiber \
         after a handful of queries (§4.3), and the hit rate follows.",
        trace.hit_rate() * 100.0
    );
}

fn generate_sequence_for(bed: &TestBed, bench: &scout::sim::Microbenchmark) -> Vec<QueryRegion> {
    let sequences = generate_sequences(&bed.dataset, &bench.sequence, 1, 99);
    sequences.into_iter().next().expect("one sequence").regions
}
