//! Mobile road navigation (§8.4): prefetching map data along a driven
//! route with a small device cache. The road network's guiding structure
//! is *explicit* (segments share endpoints), so SCOUT builds its graph
//! from the dataset adjacency instead of grid hashing (§4.1).
//!
//! Run with: `cargo run --example road_navigation --release`

use scout::prelude::*;

fn main() {
    let dataset = generate_roads(&RoadParams::default(), 7);
    println!(
        "road network: {} segments, {} explicit adjacency edges",
        dataset.len(),
        dataset.adjacency.as_ref().map_or(0, |a| a.edge_count()),
    );
    let bed = TestBed::new(dataset);

    // Queries along a route; the device can only cache 256 pages (1 MB).
    let volume = 600.0 / bed.dataset.density(); // ≈ 600 segments per query
    let params = SequenceParams {
        length: 30,
        volume,
        aspect: Aspect::Cube,
        gap: 0.0,
        overlap_frac: 0.1,
        reset_prob: 0.0,
    };
    let sequences = generate_sequences(&bed.dataset, &params, 5, 11);
    let regions = region_lists(&sequences);
    let config = ExecutorConfig { cache_pages: 256, ..ExecutorConfig::default() };

    let mut results = Vec::new();
    let mut scout = Scout::with_defaults();
    results.push(evaluate(&bed.ctx_rtree(), &mut scout, &regions, &config));
    let mut sl = StraightLine::new();
    results.push(evaluate(&bed.ctx_rtree(), &mut sl, &regions, &config));
    let mut hilbert = HilbertPrefetch::default();
    results.push(evaluate(&bed.ctx_rtree(), &mut hilbert, &regions, &config));

    println!("\nwith a 256-page device cache:");
    for m in &results {
        println!(
            "  {:14} hit rate {:5.1} %, speedup {:.1}x",
            m.name,
            m.hit_rate * 100.0,
            m.speedup
        );
    }
    println!(
        "\n\"accurate prefetching becomes key for effectively using the limited prefetch \
         memory available on the device\" (§8.4)"
    );
}
