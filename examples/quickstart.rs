//! Quickstart: generate a brain-tissue model, run a guided query sequence
//! with SCOUT prefetching, and print what happened.
//!
//! Run with: `cargo run --example quickstart --release`

use scout::prelude::*;

fn main() {
    // 1. A synthetic brain-tissue block: 60 neurons, each a soma plus
    //    branching fibers of ~3 µm cylinders.
    let dataset = generate_neurons(&NeuronParams { neuron_count: 60, ..Default::default() }, 42);
    println!(
        "dataset: {} objects, {:.0} µm side, {:.1e} objects/µm³",
        dataset.len(),
        dataset.bounds.extent().x,
        dataset.density()
    );

    // 2. Bulk load the spatial indexes (STR R-tree + FLAT) over 4 KB pages.
    let bed = TestBed::new(dataset);

    // 3. A guided spatial query sequence: 15 queries of 80 000 µm³ placed
    //    along one fiber, as a scientist following a neuron branch would.
    let params = SequenceParams { length: 15, ..SequenceParams::sensitivity_default() };
    let sequences = generate_sequences(&bed.dataset, &params, 3, 7);
    let regions = region_lists(&sequences);

    // 4. Execute with SCOUT prefetching between queries.
    let config = ExecutorConfig::default();
    let mut scout = Scout::with_defaults();
    let scout_metrics = evaluate(&bed.ctx_rtree(), &mut scout, &regions, &config);

    // ... and with the best trajectory-extrapolation baseline.
    let mut ewma = Ewma::paper_best();
    let ewma_metrics = evaluate(&bed.ctx_rtree(), &mut ewma, &regions, &config);

    println!("\n              hit rate   speedup vs no prefetching");
    println!(
        "SCOUT          {:5.1} %     {:.1}x",
        scout_metrics.hit_rate * 100.0,
        scout_metrics.speedup
    );
    println!(
        "EWMA (0.3)     {:5.1} %     {:.1}x",
        ewma_metrics.hit_rate * 100.0,
        ewma_metrics.speedup
    );
    println!(
        "\nSCOUT read {} pages ahead of the user and saved {:.1} simulated seconds.",
        scout_metrics.prefetch_pages,
        (ewma_metrics.response_us - scout_metrics.response_us).max(0.0) / 1e6
    );
}
