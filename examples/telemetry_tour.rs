//! Flight-recorder telemetry tour (DESIGN.md §13).
//!
//! Run with: `cargo run --example telemetry_tour --release`
//!
//! The demo builds a brain-tissue block, gives four clients SCOUT
//! prefetchers and guided sequences, and runs the fleet twice:
//!
//! 1. disarmed (the default) — telemetry constructs nothing and the
//!    report is byte-identical to an untelemetered engine,
//! 2. armed — the same run attaches a metrics registry (counters,
//!    gauges, log-bucketed latency histograms) and a flight log of
//!    typed, simulated-clock-stamped events,
//!
//! then reruns the armed fleet to show the width-1 event stream is
//! byte-identical, and prints the tail of the JSONL export.

use scout::prelude::*;
use scout_synth::{generate_neurons, generate_sequences, NeuronParams, SequenceParams};

const CLIENTS: usize = 4;

fn sessions(streams: &[Vec<scout::geometry::QueryRegion>]) -> Vec<Session> {
    streams
        .iter()
        .enumerate()
        .map(|(id, regions)| {
            Session::new(id, Box::new(Scout::with_seed(0x7E1E + id as u64)), regions.clone())
        })
        .collect()
}

fn engine(armed: bool) -> MultiSessionExecutor {
    MultiSessionExecutor::new(MultiSessionConfig {
        exec: ExecutorConfig {
            window_ratio: 2.0,
            cache_pages: 512,
            telemetry: armed.then(TelemetryPlan::default),
            ..ExecutorConfig::default()
        },
        shards: 8,
        schedule: Schedule::RoundRobin,
        admission: AdmissionControl::unlimited(),
        ..Default::default()
    })
}

fn main() {
    let dataset = generate_neurons(&NeuronParams { neuron_count: 20, ..Default::default() }, 42);
    println!("dataset: {} objects across {CLIENTS} clients\n", dataset.len());
    let bed = TestBed::new(dataset);
    let params = SequenceParams { length: 16, ..SequenceParams::sensitivity_default() };
    let streams = region_lists(&generate_sequences(&bed.dataset, &params, CLIENTS, 7));
    let ctx = bed.ctx_rtree();

    // 1. Disarmed: `telemetry: None` is the default — nothing is
    //    constructed, nothing is attached.
    let plain = engine(false).run(&ctx, sessions(&streams));
    assert!(plain.telemetry.is_none(), "disarmed runs attach nothing");

    // 2. Armed: same fleet, same simulated trace, plus a telemetry
    //    report. Telemetry never touches the simulated clock or the
    //    cache, so the rendered report is byte-identical.
    let armed = engine(true).run(&ctx, sessions(&streams));
    println!("{}", armed.render());
    assert_eq!(plain.render(), armed.render(), "telemetry must be invisible in the report");
    let telem = armed.telemetry.as_ref().expect("armed runs attach a TelemetryReport");

    // Counters: one shared lock-free registry, bumped by every session.
    println!("== counters ==");
    for (label, id) in [
        ("queries served", CounterId::QueriesServed),
        ("pages requested", CounterId::PagesRequested),
        ("pages hit", CounterId::PagesHit),
        ("windows opened", CounterId::WindowsOpened),
        ("prefetch pages", CounterId::PrefetchPages),
        ("gap pages", CounterId::GapPages),
    ] {
        println!("  {label:>16}: {}", telem.counter(id));
    }

    // Histograms: bounded log-bucketed views of the latency tails. The
    // percentile is the bucket's upper edge, within one bucket (≤ 25%
    // relative width) of the exact sort-based statistic the report
    // renders above.
    println!("== residual latency (histogram vs exact) ==");
    let view = telem.residual_percentiles();
    let exact = armed.residual;
    println!("  p50 {:>8.1} µs   (exact {:.1})", view.p50, exact.p50);
    println!("  p95 {:>8.1} µs   (exact {:.1})", view.p95, exact.p95);
    println!("  p99 {:>8.1} µs   (exact {:.1})", view.p99, exact.p99);

    // The flight log: every session's ring, merged and sealed into one
    // timeline ordered by (t_us, stream, seq).
    let jsonl = telem.to_jsonl();
    println!(
        "== flight log: {} events ({} dropped) ==",
        telem.events().len(),
        telem.dropped_events()
    );
    for line in jsonl.lines().rev().take(6).collect::<Vec<_>>().into_iter().rev() {
        println!("  {line}");
    }

    // 3. Determinism: timestamps are simulated and the merge order is
    //    total, so a width-1 rerun exports the identical byte stream.
    let again = engine(true).run(&ctx, sessions(&streams));
    assert_eq!(
        jsonl,
        again.telemetry.as_ref().expect("armed").to_jsonl(),
        "width-1 event streams are byte-identical across reruns"
    );
    println!("\ndeterminism: armed rerun exported a byte-identical event stream ✓");
}
