//! Adaptive prediction on a revisit-heavy workload.
//!
//! Run with: `cargo run --example adaptive_exploration --release`
//!
//! A user keeps looping over the same tour through a tissue block — the
//! bread-and-butter of real analysis sessions, and the blind spot of pure
//! structure following: at every lap boundary the user teleports back to
//! the start, and nothing inside the current result predicts that jump.
//! The demo compares plain SCOUT, the pure history Markov prefetcher, and
//! the adaptive hybrid on that loop, shows the feedback controller's
//! learned state, and finishes with a multi-session run whose report now
//! surfaces the incremental graph-cache behavior per session.

use scout::prelude::*;
use scout::sim::workloads::revisit_loop;
use scout::sim::{run_sequence, Session};
use scout_synth::{generate_neurons, NeuronParams};

fn main() {
    let dataset = generate_neurons(&NeuronParams::with_target_objects(25_000), 42);
    println!("dataset: {} objects\n", dataset.len());
    let bed = TestBed::with_page_capacity(dataset, 32);
    let ctx = bed.ctx_rtree();

    // One 8-query tour, revisited 5 times. A modest cache forces old laps
    // out, so every lap is won or lost on prediction quality.
    let params = SequenceParams { volume: 30_000.0, ..SequenceParams::sensitivity_default() };
    let regions = revisit_loop(&bed.dataset, &params, 8, 5, 7);
    let exec = ExecutorConfig { window_ratio: 1.6, cache_pages: 192, ..ExecutorConfig::default() };
    println!("workload: 8-query tour × 5 laps = {} queries\n", regions.len());

    let mut scout = Scout::with_defaults();
    let mut markov = MarkovPrefetcher::with_defaults();
    let mut hybrid = HybridPrefetcher::with_defaults();
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    {
        let prefetchers: [&mut dyn Prefetcher; 3] = [&mut scout, &mut markov, &mut hybrid];
        for p in prefetchers {
            let name = p.name();
            let t = run_sequence(&ctx, p, &regions, &exec);
            rows.push((name, t.hit_rate(), t.total_response_us() / 1_000.0));
        }
    }
    for (name, hit, ms) in &rows {
        println!(
            "{name:>22}: {:5.1} % of result pages from cache, {ms:8.1} ms response",
            hit * 100.0
        );
    }

    let c = hybrid.controller();
    println!(
        "\nfeedback controller after the run: scout precision {:.2}, markov precision {:.2},\n\
         markov budget share {:.2}, aggressiveness {:.2} ({} queries observed)",
        c.scout_precision(),
        c.markov_precision(),
        c.markov_share(),
        c.aggressiveness(),
        c.observations()
    );
    println!(
        "markov model: {} transition samples in {} contexts ({} KiB, bounded)",
        hybrid.markov().transitions(),
        hybrid.markov().contexts_used(),
        hybrid.markov().memory_bytes() / 1024
    );

    // Multi-session: a hybrid fleet over one shared cache. The report now
    // also shows each session's incremental graph-cache behavior.
    let streams: Vec<_> =
        (0..3).map(|i| revisit_loop(&bed.dataset, &params, 8, 3, 11 + i)).collect();
    let engine = MultiSessionExecutor::new(MultiSessionConfig {
        exec,
        shards: 8,
        schedule: Schedule::RoundRobin,
        ..Default::default()
    });
    let sessions = streams
        .iter()
        .enumerate()
        .map(|(id, s)| {
            Session::new(id, Box::new(HybridPrefetcher::with_seed(0xAD + id as u64)), s.clone())
        })
        .collect();
    let report = engine.run(&ctx, sessions);
    println!("\n3 hybrid sessions over one shared cache:\n{}", report.render());
}
