//! Dataset explorer: generates all four synthetic scientific datasets and
//! prints their shape — object counts, densities, page layouts, structure
//! graphs. Useful for understanding what the benchmarks run on.
//!
//! Run with: `cargo run --example dataset_explorer --release`

use scout::index::DEFAULT_PAGE_CAPACITY;
use scout::prelude::*;

fn describe(dataset: &Dataset) {
    let bed = TestBed::new(dataset.clone());
    let layout = bed.rtree.layout();
    let mean_page_extent: f64 = layout
        .pages()
        .iter()
        .map(|p| {
            let e = p.mbr.extent();
            (e.x + e.y + e.z) / 3.0
        })
        .sum::<f64>()
        / layout.page_count() as f64;

    println!("== {} ==", dataset.domain.name());
    println!("  objects            : {}", dataset.len());
    println!("  bounds             : {:.0} µm side", dataset.bounds.extent().x);
    println!("  density            : {:.2e} objects/µm³", dataset.density());
    println!(
        "  pages (cap {})     : {} ({} objects in the last)",
        DEFAULT_PAGE_CAPACITY,
        layout.page_count(),
        layout.pages().last().map_or(0, |p| p.objects.len())
    );
    println!("  mean page extent   : {mean_page_extent:.1} µm");
    println!("  guide-graph nodes  : {}", dataset.guide.node_count());
    println!("  guide-graph edges  : {}", dataset.guide.edge_count());
    match &dataset.adjacency {
        Some(adj) => println!(
            "  explicit adjacency : yes ({} directed edges) — §4.1 explicit structure",
            adj.edge_count()
        ),
        None => println!("  explicit adjacency : no — SCOUT grid-hashes the results (§4.2)"),
    }
    println!(
        "  FLAT neighborhoods : {:.1} neighbors/page on average\n",
        bed.flat.mean_neighbor_count()
    );
}

fn main() {
    describe(&generate_neurons(&NeuronParams { neuron_count: 80, ..Default::default() }, 1));
    describe(&generate_arterial(&ArterialParams { generations: 6, ..Default::default() }, 2));
    describe(&generate_lung(&LungParams { generations: 6, ..Default::default() }, 3));
    describe(&generate_roads(&RoadParams { grid_n: 32, ..Default::default() }, 4));
}
