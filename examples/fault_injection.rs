//! Fault injection and the degradation ladder (DESIGN.md §11).
//!
//! Run with: `cargo run --example fault_injection --release`
//!
//! The demo builds a brain-tissue block, gives four clients SCOUT
//! prefetchers and guided sequences, and runs the fleet on progressively
//! worse simulated disks:
//!
//! 1. a healthy disk (injection disabled — the byte-identical baseline),
//! 2. rough weather: transient errors, stragglers, checksum-detected
//!    corruption, a few permanently stuck pages,
//! 3. a catastrophic device (every third page stuck) to show queries
//!    failing cleanly while the fleet keeps running,
//!
//! then reruns level 2 with the same seed to show the fault schedule is
//! deterministic, and once more with a wider crew to show the
//! interleaving invariants hold at any width.

use scout::prelude::*;
use scout_synth::{generate_neurons, generate_sequences, NeuronParams, SequenceParams};

const CLIENTS: usize = 4;

fn sessions(streams: &[Vec<scout::geometry::QueryRegion>]) -> Vec<Session> {
    streams
        .iter()
        .enumerate()
        .map(|(id, regions)| {
            Session::new(id, Box::new(Scout::with_seed(0xFA + id as u64)), regions.clone())
        })
        .collect()
}

fn engine(bed: &TestBed, faults: FaultPlan, workers: usize) -> MultiSessionExecutor {
    MultiSessionExecutor::new(MultiSessionConfig {
        exec: ExecutorConfig {
            window_ratio: 2.0,
            cache_pages: bed.rtree.layout().page_count(),
            faults,
            ..ExecutorConfig::default()
        },
        shards: 8,
        schedule: Schedule::WorkStealing { workers },
        admission: AdmissionControl::unlimited(),
        ..Default::default()
    })
}

fn main() {
    let dataset = generate_neurons(&NeuronParams { neuron_count: 20, ..Default::default() }, 42);
    println!("dataset: {} objects across {CLIENTS} clients\n", dataset.len());
    let bed = TestBed::new(dataset);
    let params = SequenceParams { length: 16, ..SequenceParams::sensitivity_default() };
    let streams = region_lists(&generate_sequences(&bed.dataset, &params, CLIENTS, 7));
    let ctx = bed.ctx_rtree();

    // 1. Healthy disk: `FaultPlan::default()` leaves injection off and the
    //    executor takes the legacy infallible path, byte for byte.
    println!("== healthy disk (injection disabled) ==");
    let clean = engine(&bed, FaultPlan::default(), 1).run(&ctx, sessions(&streams));
    println!("{}", clean.render());
    assert!(clean.faults.is_none(), "no injection, no fault block");

    // 2. Rough weather: every fault class active. Transient and corrupt
    //    reads retry with backoff; stragglers are absorbed; stuck pages
    //    fail their query; failed prefetch reads fall back to on-demand.
    let weather = FaultConfig {
        seed: 0xC0FFEE,
        transient_rate: 0.08,
        corrupt_rate: 0.02,
        stuck_rate: 0.005,
        slow_rate: 0.04,
        slow_multiplier: 8.0,
    };
    println!("== rough weather (seed {:#x}) ==", weather.seed);
    let rough = engine(&bed, FaultPlan::injecting(weather), 1).run(&ctx, sessions(&streams));
    println!("{}", rough.render());
    let f = rough.faults.expect("injection armed");
    println!(
        "ladder: {} retried, {} recovered, {} prefetch reads dropped, \
         {} windows shed by the breaker, {} queries failed\n",
        f.retries, f.recovered, f.dropped_prefetch, f.degraded_windows, f.failed_queries
    );
    assert_eq!(f.corruption_served, 0, "verified reads never leak corruption");

    // 3. Catastrophic device: a third of all pages permanently stuck. The
    //    breaker opens, most queries fail — but every session still runs
    //    its stream to completion and the report still renders.
    let broken = FaultConfig { stuck_rate: 0.34, ..FaultConfig::none(0xDEAD) };
    println!("== catastrophic device (34% stuck pages) ==");
    let dying = engine(&bed, FaultPlan::injecting(broken), 1).run(&ctx, sessions(&streams));
    let f = dying.faults.expect("injection armed");
    println!(
        "fleet survived: {}/{} queries failed cleanly, {} breaker trips, 0 panics\n",
        f.failed_queries,
        dying.sessions.iter().map(|s| s.queries).sum::<usize>(),
        f.breaker_trips
    );

    // 4. Determinism: the schedule is a pure function of the seed — a
    //    serialized rerun reproduces the identical report. A wider crew
    //    is not byte-reproducible (dropped prefetch reads race with
    //    sibling inserts on cache membership, DESIGN.md §11) but must
    //    preserve the invariants: every stream completes, the same
    //    pages are requested, and no corruption is ever served.
    let again = engine(&bed, FaultPlan::injecting(weather), 1).run(&ctx, sessions(&streams));
    assert_eq!(rough.render(), again.render(), "same seed, same faults, same trace");
    let wide = engine(&bed, FaultPlan::injecting(weather), 4).run(&ctx, sessions(&streams));
    for (a, b) in rough.sessions.iter().zip(&wide.sessions) {
        assert_eq!(
            (a.queries, a.pages_total),
            (b.queries, b.pages_total),
            "session {}: a wider crew changed the work itself",
            a.id
        );
    }
    assert_eq!(wide.faults.expect("injection armed").corruption_served, 0);
    println!("determinism: rerun byte-identical; width-4 preserves the invariants ✓");
}
