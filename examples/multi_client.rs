//! Multi-client execution: K concurrent sessions share one sharded
//! prefetch cache while each follows its own latent structure.
//!
//! Run with: `cargo run --example multi_client --release`
//!
//! The demo builds a brain-tissue block, gives every client a SCOUT
//! prefetcher and a guided query sequence along a different fiber, and
//! executes the fleet three ways:
//!
//! 1. private caches — every client simulated alone (the seed behavior),
//! 2. one shared `ShardedCache`, deterministic round-robin schedule,
//! 3. the same shared cache on one OS thread per session.
//!
//! The report shows per-session residual-latency percentiles (p50/p95/p99)
//! and the shared-cache hit rate; a final pass adds a prefetch-less
//! "rider" client to show cross-session sharing directly.

use scout::prelude::*;
use scout_synth::{generate_neurons, generate_sequences, NeuronParams, SequenceParams};

const CLIENTS: usize = 6;

fn sessions(streams: &[Vec<scout::geometry::QueryRegion>]) -> Vec<Session> {
    streams
        .iter()
        .enumerate()
        .map(|(id, regions)| {
            Session::new(id, Box::new(Scout::with_seed(0x5C0 + id as u64)), regions.clone())
        })
        .collect()
}

fn main() {
    // A tissue block and one guided sequence per client, each following a
    // different fiber of the same dataset.
    let dataset = generate_neurons(&NeuronParams { neuron_count: 40, ..Default::default() }, 42);
    println!("dataset: {} objects across {} clients\n", dataset.len(), CLIENTS);
    let bed = TestBed::new(dataset);
    let params = SequenceParams { length: 20, ..SequenceParams::sensitivity_default() };
    let streams = region_lists(&generate_sequences(&bed.dataset, &params, CLIENTS, 7));
    let ctx = bed.ctx_rtree();

    let exec = ExecutorConfig { window_ratio: 2.0, ..ExecutorConfig::default() };

    // 1. Baseline: every client alone with a private cache (each gets an
    //    equal slice of the shared budget).
    let private_exec = ExecutorConfig { cache_pages: (exec.cache_pages / CLIENTS).max(1), ..exec };
    let engine = MultiSessionExecutor::new(MultiSessionConfig {
        exec: private_exec,
        shards: 1,
        schedule: Schedule::RoundRobin,
        ..Default::default()
    });
    let private: Vec<MultiSessionReport> = streams
        .iter()
        .enumerate()
        .map(|(id, s)| {
            engine.run(
                &ctx,
                vec![Session::new(id, Box::new(Scout::with_seed(0x5C0 + id as u64)), s.clone())],
            )
        })
        .collect();
    let private_hits: u64 = private.iter().map(MultiSessionReport::total_pages_hit).sum();
    let private_pages: u64 = private.iter().map(MultiSessionReport::total_pages).sum();
    println!(
        "private caches ({} × {} pages): hit rate {:.1} %",
        CLIENTS,
        private_exec.cache_pages,
        100.0 * scout::storage::hit_ratio(private_hits, private_pages)
    );

    // 2. Shared sharded cache, deterministic round-robin schedule.
    let engine = MultiSessionExecutor::new(MultiSessionConfig {
        exec,
        shards: 8,
        schedule: Schedule::RoundRobin,
        ..Default::default()
    });
    let rr = engine.run(&ctx, sessions(&streams));
    println!(
        "\nshared ShardedCache ({} pages, 8 shards), round-robin schedule:\n{}",
        exec.cache_pages,
        rr.render()
    );

    // 3. Same fleet, one OS thread per session.
    let engine = MultiSessionExecutor::new(MultiSessionConfig {
        exec,
        shards: 8,
        schedule: Schedule::Threaded,
        ..Default::default()
    });
    let th = engine.run(&ctx, sessions(&streams));
    println!(
        "threaded ({} OS threads): hit rate {:.1} %, total pages hit {} (round-robin: {})",
        CLIENTS,
        100.0 * th.hit_rate(),
        th.total_pages_hit(),
        rr.total_pages_hit()
    );

    // 4. Cross-session sharing, made visible: a client that never
    //    prefetches rides an identical leader's cache entries.
    let engine = MultiSessionExecutor::new(MultiSessionConfig {
        exec,
        shards: 8,
        schedule: Schedule::RoundRobin,
        ..Default::default()
    });
    let pair = engine.run(
        &ctx,
        vec![
            Session::new(0, Box::new(Scout::with_defaults()), streams[0].clone()),
            Session::new(1, Box::new(NoPrefetch), streams[0].clone()),
        ],
    );
    println!(
        "\nrider demo (same fiber, shared cache): SCOUT leader {:.1} % hit rate, \
         prefetch-less rider {:.1} % — the rider is served by the leader's prefetches",
        100.0 * pair.sessions[0].hit_rate(),
        100.0 * pair.sessions[1].hit_rate()
    );
}
