//! Gap traversal (§6.3): when queries have gaps between them, linear
//! extrapolation degrades — SCOUT-OPT follows the candidate structure
//! *through* the gap by crawling page neighborhoods on the FLAT index,
//! spending a bounded I/O budget to keep the prediction on track.
//!
//! Run with: `cargo run --example gap_traversal --release`

use scout::prelude::*;

fn main() {
    let dataset = generate_neurons(&NeuronParams { neuron_count: 120, ..Default::default() }, 5);
    let bed = TestBed::new(dataset);

    println!("gap [µm] | SCOUT hit % | SCOUT-OPT hit % | gap pages (overhead I/O)");
    println!("---------+-------------+-----------------+--------------------------");
    for gap in [0.0, 10.0, 20.0, 30.0] {
        let params = SequenceParams {
            length: 20,
            volume: 30_000.0,
            aspect: Aspect::Frustum,
            gap,
            overlap_frac: 0.1,
            reset_prob: 0.0,
        };
        let sequences = generate_sequences(&bed.dataset, &params, 4, 17);
        let regions = region_lists(&sequences);
        let config = ExecutorConfig { window_ratio: 1.2, ..Default::default() };

        let mut scout = Scout::with_defaults();
        let s = evaluate(&bed.ctx_rtree(), &mut scout, &regions, &config);
        let mut opt = ScoutOpt::with_defaults();
        let o = evaluate(&bed.ctx_flat(), &mut opt, &regions, &config);

        println!(
            "{:8} | {:11.1} | {:15.1} | {:10}",
            gap,
            s.hit_rate * 100.0,
            o.hit_rate * 100.0,
            o.gap_pages,
        );
    }
    println!(
        "\nSCOUT-OPT trades a small amount of extra I/O (the gap pages, capped at 10 % of \
         the last query's pages) for predictions that survive bends inside the gap."
    );
}
