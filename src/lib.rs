//! # SCOUT — structure-aware prefetching for guided spatial query sequences
//!
//! A from-scratch Rust reproduction of *"SCOUT: Prefetching for Latent
//! Structure Following Queries"* (Tauheed, Heinis, Schürmann, Markram,
//! Ailamaki — PVLDB 5(11), 2012), including every substrate the paper
//! depends on: a paged storage layer with a simulated disk, STR bulk-loaded
//! R-trees, a FLAT-style neighborhood index, synthetic scientific datasets,
//! the full baseline roster, and the execution-timeline simulator that
//! reproduces the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use scout::prelude::*;
//!
//! // A small brain-tissue model and a guided query sequence along one of
//! // its fibers.
//! let dataset = generate_neurons(
//!     &NeuronParams { neuron_count: 20, fiber_steps: 200, ..Default::default() },
//!     42,
//! );
//! let bed = TestBed::new(dataset);
//! let params = SequenceParams { length: 10, ..SequenceParams::sensitivity_default() };
//! let sequences = generate_sequences(&bed.dataset, &params, 2, 7);
//!
//! // Run SCOUT against the no-prefetching baseline.
//! let mut scout = Scout::with_defaults();
//! let metrics = evaluate(
//!     &bed.ctx_rtree(),
//!     &mut scout,
//!     &region_lists(&sequences),
//!     &ExecutorConfig::default(),
//! );
//! assert!(metrics.hit_rate >= 0.0 && metrics.hit_rate <= 1.0);
//! assert!(metrics.speedup >= 1.0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`scout_geometry`] | vectors, boxes, shapes, intersections, grids, Hilbert/Morton curves |
//! | [`scout_storage`] | pages, simulated disk, LRU prefetch cache, I/O stats |
//! | [`scout_index`] | STR R-tree and FLAT-style neighborhood index |
//! | [`scout_synth`] | synthetic datasets + guided query sequences |
//! | [`scout_core`] | SCOUT and SCOUT-OPT |
//! | [`scout_predict`] | Markov history prefetcher, SCOUT hybrid, feedback control |
//! | [`scout_baselines`] | EWMA, straight line, polynomial, velocity, Hilbert, layered, Markov |
//! | [`scout_sim`] | prefetcher trait, Figure-2 executor, workloads, experiments |
//! | [`scout_telemetry`] | mergeable metrics registry, flight recorder, span timers |

pub use scout_baselines as baselines;
pub use scout_core as core;
pub use scout_geometry as geometry;
pub use scout_index as index;
pub use scout_predict as predict;
pub use scout_sim as sim;
pub use scout_storage as storage;
pub use scout_synth as synth;
pub use scout_telemetry as telemetry;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use scout_baselines::{Ewma, HilbertPrefetch, Layered, Polynomial, StraightLine, Velocity};
    pub use scout_core::{Scout, ScoutConfig, ScoutOpt, ScoutOptConfig, Strategy};
    pub use scout_geometry::{Aabb, Aspect, QueryRegion, Shape, SpatialObject, Vec3};
    pub use scout_index::{FlatIndex, OrderedSpatialIndex, RTree, SpatialIndex};
    pub use scout_predict::{
        FeedbackConfig, FeedbackController, HybridConfig, HybridPrefetcher, MarkovConfig,
        MarkovPrefetcher, MarkovPrefetcherConfig, TransitionPredictor,
    };
    pub use scout_sim::{
        evaluate, percentiles, region_lists, run_parallel, run_sequence, run_sequences,
        AdmissionControl, ExecutorConfig, LatencyPercentiles, MultiSessionConfig,
        MultiSessionExecutor, MultiSessionReport, NoPrefetch, Prefetcher, Schedule,
        SchedulerReport, ServeOutcome, Session, SessionReport, SessionScheduler, SimContext,
        TelemetryReport, TenantReport, TestBed,
    };
    pub use scout_storage::{
        BatchPlan, BatchReport, BreakerPolicy, CacheStats, DiskProfile, FaultConfig, FaultPlan,
        FaultReport, IoError, PageCache, PrefetchCache, RetryPolicy, ShardedCache, SharedClock,
    };
    pub use scout_synth::{
        generate_arterial, generate_lung, generate_neurons, generate_roads, generate_sequence,
        generate_sequences, ArterialParams, Dataset, Domain, LungParams, NeuronParams, RoadParams,
        SequenceParams,
    };
    pub use scout_telemetry::{CounterId, GaugeId, HistogramId, TelemetryPlan};
}
