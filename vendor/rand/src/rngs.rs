//! The concrete generators: both are xoshiro256++ under the hood; the two
//! names exist so code written against upstream `rand` (`StdRng` for
//! reproducible streams, `SmallRng` for cheap per-instance generators)
//! compiles unchanged.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state, seeded via SplitMix64 (the upstream-recommended
/// seeding procedure, which also guarantees a nonzero state).
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    pub fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus { s: [next(), next(), next(), next()] }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

macro_rules! define_rng {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name(Xoshiro256PlusPlus);

        impl RngCore for $name {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.step()
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(state: u64) -> Self {
                $name(Xoshiro256PlusPlus::from_u64(state))
            }
        }
    };
}

define_rng! {
    /// Reproducible generator for dataset/sequence synthesis.
    StdRng
}
define_rng! {
    /// Cheap per-instance generator for algorithmic tie-breaking.
    SmallRng
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y: usize = rng.random_range(0..13);
            assert!(y < 13);
            let z: f64 = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
            let w: u32 = rng.random_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn unit_interval_covers_and_stays_inside() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            lo_seen |= u < 0.1;
            hi_seen |= u > 0.9;
        }
        assert!(lo_seen && hi_seen, "poor coverage of [0, 1)");
    }
}
