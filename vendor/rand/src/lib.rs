//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of `rand` 0.9 the workspace actually uses: the
//! [`Rng`] extension trait with `random` / `random_range`, [`SeedableRng`]
//! with `seed_from_u64`, and the [`rngs::StdRng`] / [`rngs::SmallRng`]
//! generators. Both generators are xoshiro256++ seeded through SplitMix64 —
//! deterministic, fast, and statistically solid for simulation workloads.
//! Stream values differ from upstream `rand`, which only shifts the
//! synthetic datasets, not any invariant the test suite checks.

pub mod rngs;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the `StandardUniform`
/// distribution in upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types `random_range` accepts (mirrors `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` via multiply-shift with rejection
/// (Lemire's method) so small spans stay bias-free.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // FP rounding can land exactly on `end`; nudge back inside.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}
