//! Runner configuration and the error type `prop_assert*` produce.

use std::fmt;

/// Mirror of upstream's `ProptestConfig` (only the fields used here).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// Cases to actually run: `PROPTEST_CASES` (if set and parseable)
    /// caps the configured count so CI can trade coverage for speed.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the un-annotated suites quick
        // while staying far above the workspace's explicit `with_cases`.
        Config { cases: 64 }
    }
}

/// A failed property case. Carries the formatted assertion message.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
