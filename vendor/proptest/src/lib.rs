//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's six property-test
//! suites use: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!`, range and tuple strategies, `prop::collection::vec`,
//! `prop_oneof!`, `Just`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! no shrinking (a failing case reports its seed and case number instead of
//! a minimized input) and deterministic seeding derived from the test name
//! (override the case count with `PROPTEST_CASES`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case and fails the surrounding `#[test]` on the first
/// case whose `prop_assert*` fails.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let cases = config.effective_cases();
                for case in 0..cases {
                    let mut rng = $crate::strategy::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                            l, r, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current property case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `left != right`\n  both: {:?}", l),
                    ));
                }
            }
        }
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut variants: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::strategy::SampleRng) -> _>,
        > = ::std::vec::Vec::new();
        $(
            {
                let s = $strat;
                variants.push(::std::boxed::Box::new(move |rng: &mut $crate::strategy::SampleRng| {
                    $crate::strategy::Strategy::sample(&s, rng)
                }));
            }
        )+
        $crate::strategy::Union::new(variants)
    }};
}
