//! Value-generation strategies. Unlike upstream proptest there is no value
//! tree / shrinking machinery: a strategy is just a sampler, which keeps
//! the vendored crate small while preserving the user-facing API.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while sampling a case.
pub type SampleRng = StdRng;

/// Deterministic per-(test, case) RNG so failures are reproducible by
/// rerunning the same binary.
pub fn rng_for(test_name: &str, case: u32) -> SampleRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SampleRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut SampleRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut SampleRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut SampleRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `Strategy::prop_filter` combinator (rejection sampling, bounded).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut SampleRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive samples: {}", self.whence);
    }
}

/// A boxed sampler, the representation `prop_oneof!` variants erase to.
pub type BoxedSampler<T> = Box<dyn Fn(&mut SampleRng) -> T>;

/// `prop_oneof!` support: uniform choice over boxed samplers.
pub struct Union<T> {
    variants: Vec<BoxedSampler<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<BoxedSampler<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut SampleRng) -> T {
        let i = rng.random_range(0..self.variants.len());
        (self.variants[i])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
