//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{SampleRng, Strategy};
use rand::Rng;

/// Length specification accepted by [`vec`]: a range or an exact size.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

/// Vectors of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
