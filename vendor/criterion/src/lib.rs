//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`] macros —
//! backed by a simple wall-clock measurement loop: per sample, the routine
//! runs in a batch sized so each sample takes roughly a millisecond, and the
//! harness reports min/mean/max per-iteration time across samples.
//!
//! No statistical analysis, plotting, or baseline storage; output is a
//! single line per benchmark on stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so code written against criterion's `black_box` also works.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Mirror of criterion's `BatchSize`; the stub sizes every batch the same
/// way, the variants exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark measurement state.
pub struct Bencher {
    sample_size: usize,
    /// Smoke mode: execute the routine exactly once, no calibration.
    smoke: bool,
    /// (total time, iterations) per sample, filled by `iter*`.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    fn new(sample_size: usize, smoke: bool) -> Self {
        Bencher { sample_size, smoke, samples: Vec::new() }
    }

    /// Calibrates a batch size so one sample lasts ≳1 ms, then records
    /// `sample_size` samples of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            black_box(routine());
            return;
        }
        let batch = calibrate(|| {
            black_box(routine());
        });
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push((t0.elapsed(), batch));
        }
    }

    /// Criterion's batched form: `setup` output is consumed by `routine`
    /// and excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.smoke {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push((t0.elapsed(), 1));
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name:<40} (no samples)");
            return;
        }
        let per_iter: Vec<f64> =
            self.samples.iter().map(|(d, n)| d.as_secs_f64() / *n as f64).collect();
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!("bench {name:<40} [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
    }
}

/// Doubles the batch until one batch takes at least ~1 ms (capped so huge
/// routines still finish quickly).
fn calibrate<F: FnMut()>(mut routine: F) -> u64 {
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            routine();
        }
        let elapsed = t0.elapsed();
        if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            return batch;
        }
        batch *= 2;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Benchmark driver. When the binary is run without `--bench` (as
/// `cargo test` does for harness-less bench targets) every routine runs
/// once as a smoke check instead of being measured.
pub struct Criterion {
    sample_size: usize,
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { sample_size: 10, measure }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.measure {
            let mut b = Bencher::new(self.sample_size, false);
            f(&mut b);
            b.report(name);
        } else {
            // Smoke mode: run the routine once to prove it executes.
            let mut b = Bencher::new(1, true);
            f(&mut b);
            println!("bench {name:<40} ok (smoke)");
        }
        self
    }
}

/// Mirror of `criterion_group!`: builds a function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
